// Package admission is the edge admission-control layer (DESIGN.md
// §15): a policy gate wrapped around the HTTP front door of both
// internal/serve (replica-side) and internal/router (fleet-edge),
// ahead of the batcher, so overload degrades deliberately instead of
// collapsing the tail. Three stages run per request:
//
//  1. CIDR policy — a longest-prefix-match radix trie over the
//     client's IPv4/IPv6 address decides allow / deny / class-assign
//     (deny → 403 "denied"). The same rule table compiles into an
//     nftables ruleset (EmitNFTables, cmd/policyc) for kernel-level
//     pre-filtering, mirroring markpash/ir-access; the in-process
//     trie is the portable fallback.
//  2. Per-client token buckets — keyed by the policy's identity
//     header, else the client IP; configurable rate/burst, lazily
//     GC'd. Empty bucket → 429 "rate_limited" with a Retry-After
//     computed from the refill rate.
//  3. Priority classes with deadline-aware queueing — a bounded
//     per-class queue ahead of the batcher. When the concurrency
//     budget is exceeded the lowest class sheds first (503
//     "overloaded" + Retry-After); queue time of shed requests lands
//     in a histogram on /metrics.
//
// Rejections reuse the /v2 error-envelope shape
// ({"error":{"code","message","request_id"}}), the policy hot-reloads
// atomically (POST /v2/admin/policy, or SIGHUP in the cmds) without
// dropping in-flight requests, and every stage exports
// repro_admission_* counters. /healthz, /metrics and /v2/admin/* are
// exempt from the stages so health probes, scrapes and operator
// actions — including the reload that un-wedges a bad policy — keep
// working under full shed.
//
// The package sits under the detpath analyzer: it never reads the
// wall clock itself. Config.Now injects the clock (time.Now in the
// cmds, a scripted clock in tests), which is what makes token-bucket
// refill and Retry-After arithmetic deterministically testable.
package admission

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// Config is the Gate's process-lifetime wiring. Everything a reload
// may change lives in the Policy instead.
type Config struct {
	// Now is the clock (required by tests, defaulted to time.Now by
	// New). The Gate never calls time.Now directly — see the package
	// comment.
	Now func() time.Time
	// TrustForwardedFor resolves the client address from the first
	// X-Forwarded-For entry when present. Enable it ONLY behind a
	// proxy that overwrites the header (cmd/router does); trusting it
	// from the open internet lets clients spoof their way past CIDR
	// rules and rate limits.
	TrustForwardedFor bool
	// AccessLog, when set, receives one line per rejected request.
	AccessLog *log.Logger
}

// classStats is one class's monotonic counters. Classes are keyed by
// name so counters survive policy reloads that reorder the class
// list.
type classStats struct {
	name string
	shed atomic.Int64
}

// Gate is the admission middleware: an http.Handler wrapping the
// serving front door. Build it with New, swap policies with
// SetPolicy.
type Gate struct {
	inner http.Handler
	cfg   Config
	now   func() time.Time

	tab atomic.Pointer[Table]

	buckets *buckets

	schedMu sync.Mutex
	sched   scheduler

	// Counters (exported as repro_admission_* on /metrics).
	allowed     atomic.Int64
	denied      atomic.Int64
	rateLimited atomic.Int64
	reloads     atomic.Int64
	shedWait    stats.Histogram

	// classStats by name, insertion-ordered for export (the map is
	// only indexed, never iterated — the package is detpath-scoped).
	classMu    sync.Mutex
	classByID  []*classStats // index = priority level seen so far
	classOrder []*classStats
	classNames map[string]*classStats
}

// New builds a Gate around inner enforcing pol.
func New(inner http.Handler, pol *Policy, cfg Config) (*Gate, error) {
	tab, err := pol.Compile()
	if err != nil {
		return nil, err
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	g := &Gate{
		inner:      inner,
		cfg:        cfg,
		now:        cfg.Now,
		buckets:    newBuckets(),
		classNames: make(map[string]*classStats),
	}
	g.tab.Store(tab)
	g.syncClassStats(tab)
	return g, nil
}

// table returns the current compiled policy.
func (g *Gate) table() *Table { return g.tab.Load() }

// Policy returns a copy of the currently enforced policy document.
func (g *Gate) Policy() Policy { return g.table().Source() }

// Classes returns the enforced class names in priority order.
func (g *Gate) Classes() []string { return g.table().Classes() }

// Reloads reports how many times the policy has been swapped.
func (g *Gate) Reloads() int64 { return g.reloads.Load() }

// SetPolicy compiles and atomically installs a new policy. In-flight
// requests are never dropped: running requests keep their slots,
// queued waiters keep their place (their class priority was fixed at
// enqueue), and buckets keep their balances (rate/burst apply from
// the next refill). If the new policy disables the queue stage, every
// queued waiter is granted immediately — nothing may wait on a stage
// that no longer exists.
func (g *Gate) SetPolicy(pol *Policy) error {
	tab, err := pol.Compile()
	if err != nil {
		return err
	}
	g.tab.Store(tab)
	g.syncClassStats(tab)
	g.reloads.Add(1)
	if tab.maxConcurrent == 0 {
		var flushed []*waiter
		g.schedMu.Lock()
		for qi := range g.sched.queues {
			for _, w := range g.sched.queues[qi] {
				w.done = true
				g.sched.running++
				flushed = append(flushed, w)
			}
			g.sched.queues[qi] = nil
		}
		g.schedMu.Unlock()
		for _, w := range flushed {
			w.ch <- admitGranted
		}
	}
	return nil
}

// syncClassStats makes sure every class of tab has a counter bundle,
// keyed by name (so a reload that reorders classes keeps counting
// into the same series) and mirrored by priority index for the shed
// path.
func (g *Gate) syncClassStats(tab *Table) {
	g.classMu.Lock()
	defer g.classMu.Unlock()
	for len(g.classByID) < len(tab.classes) {
		g.classByID = append(g.classByID, nil)
	}
	for i, c := range tab.classes {
		cs := g.classNames[c.name]
		if cs == nil {
			cs = &classStats{name: c.name}
			g.classNames[c.name] = cs
			g.classOrder = append(g.classOrder, cs)
		}
		g.classByID[i] = cs
	}
}

// classStatsFor resolves the counter bundle for a priority index. A
// waiter enqueued under an older, longer class list may carry an
// index past the current table; it still has a bundle from when it
// was enqueued.
func (g *Gate) classStatsFor(class int) *classStats {
	g.classMu.Lock()
	defer g.classMu.Unlock()
	if class >= 0 && class < len(g.classByID) && g.classByID[class] != nil {
		return g.classByID[class]
	}
	cs := g.classNames[defaultClassName]
	if cs == nil {
		cs = &classStats{name: defaultClassName}
		g.classNames[defaultClassName] = cs
		g.classOrder = append(g.classOrder, cs)
	}
	return cs
}

// PolicyAdminPath is the hot-reload route the Gate serves itself.
const PolicyAdminPath = "/v2/admin/policy"

// ServeHTTP runs the three stages, then hands the request to the
// wrapped handler. Health, metrics and admin routes are exempt (see
// the package comment); /metrics passes through and gains the
// repro_admission_* families appended to the inner exposition.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PolicyAdminPath:
		g.handlePolicyAdmin(w, r)
		return
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		g.inner.ServeHTTP(w, r)
		g.writeMetrics(w)
		return
	case r.URL.Path == "/healthz" || strings.HasPrefix(r.URL.Path, "/v2/admin/"):
		g.inner.ServeHTTP(w, r)
		return
	}

	tab := g.table()
	rid := serve.EnsureRequestID(r)
	r.Header.Set(serve.RequestIDHeader, rid)

	// Stage 1: CIDR policy.
	addr, haveAddr := g.clientAddr(r)
	action, class := tab.defaultAction, tab.defaultClass
	ruleClass := -1
	if haveAddr {
		if v, ok := tab.trie.lookup(addr); ok {
			action = v.action
			ruleClass = v.class
		}
	}
	if action == ActionDeny {
		g.denied.Add(1)
		g.reject(w, r, http.StatusForbidden, "denied",
			fmt.Sprintf("admission: client %s is denied by traffic policy", addrLabel(addr, haveAddr)), 0)
		return
	}
	switch {
	case ruleClass >= 0:
		class = ruleClass // the network policy's assignment wins
	case tab.classHeader != "":
		if name := r.Header.Get(tab.classHeader); name != "" {
			if idx, ok := tab.classIndex[name]; ok {
				class = idx
			}
		}
	}

	// Stage 2: per-client token bucket.
	if tab.rate > 0 {
		key := g.identity(r, tab, addr, haveAddr)
		ok, wait := g.buckets.take(key, tab.rate, tab.burst, g.now())
		if !ok {
			g.rateLimited.Add(1)
			g.reject(w, r, http.StatusTooManyRequests, "rate_limited",
				fmt.Sprintf("admission: rate limit exceeded for %s (%g req/s, burst %g)", key, tab.rate, tab.burst), wait)
			return
		}
	}

	// Stage 3: priority queue against the concurrency budget.
	if tab.maxConcurrent > 0 {
		outcome, waited := g.admit(r.Context(), class, tab.classes[class].queue, tab.maxConcurrent)
		if outcome == admitShed {
			g.reject(w, r, http.StatusServiceUnavailable, "overloaded",
				fmt.Sprintf("admission: overloaded, class %q shed after %s queued",
					g.classStatsFor(class).name, waited.Round(time.Millisecond)), tab.retryAfter)
			return
		}
		defer g.release()
	}

	g.allowed.Add(1)
	g.inner.ServeHTTP(w, r)
}

// clientAddr resolves the client IP: the first X-Forwarded-For entry
// when the Gate trusts its proxy, else the connection's remote
// address.
func (g *Gate) clientAddr(r *http.Request) (netip.Addr, bool) {
	if g.cfg.TrustForwardedFor {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first, _, _ := strings.Cut(xff, ",")
			if a, err := netip.ParseAddr(strings.TrimSpace(first)); err == nil {
				return a.Unmap(), true
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	a, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}, false
	}
	return a.Unmap(), true
}

func addrLabel(a netip.Addr, ok bool) string {
	if !ok {
		return "(unknown address)"
	}
	return a.String()
}

// maxIdentityLen bounds header-supplied bucket keys so a hostile
// client cannot inflate the bucket table with megabyte identities.
const maxIdentityLen = 128

// identity resolves the token-bucket key: the identity header when
// the policy names one and the request carries it, else the client
// IP.
func (g *Gate) identity(r *http.Request, tab *Table, addr netip.Addr, haveAddr bool) string {
	if tab.identityHeader != "" {
		if v := r.Header.Get(tab.identityHeader); v != "" {
			if len(v) > maxIdentityLen {
				v = v[:maxIdentityLen]
			}
			return "id:" + v
		}
	}
	if haveAddr {
		return "ip:" + addr.String()
	}
	return "ip:unknown"
}

// errorEnvelope mirrors the /v2 error wire shape.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// reject writes one typed refusal: the /v2-shaped envelope, the
// request ID echoed, and Retry-After (whole seconds, rounded up,
// floor 1) when retryAfter > 0.
func (g *Gate) reject(w http.ResponseWriter, r *http.Request, status int, code, msg string, retryAfter time.Duration) {
	rid := r.Header.Get(serve.RequestIDHeader)
	w.Header().Set(serve.RequestIDHeader, rid)
	if retryAfter > 0 {
		secs := int64(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{
		Code:      code,
		Message:   msg,
		RequestID: rid,
	}})
	if g.cfg.AccessLog != nil {
		g.cfg.AccessLog.Printf("%s %s status=%d code=%s request=%s", r.Method, r.URL.Path, status, code, rid)
	}
}

// handlePolicyAdmin serves the hot-reload route: POST installs the
// body as the new policy (the whole policy JSON document), GET
// returns the currently enforced one.
func (g *Gate) handlePolicyAdmin(w http.ResponseWriter, r *http.Request) {
	rid := serve.EnsureRequestID(r)
	r.Header.Set(serve.RequestIDHeader, rid)
	w.Header().Set(serve.RequestIDHeader, rid)
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(g.Policy())
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			status, code := http.StatusBadRequest, "bad_policy"
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status, code = http.StatusRequestEntityTooLarge, "too_large"
			}
			g.reject(w, r, status, code, fmt.Sprintf("admission: policy body: %v", err), 0)
			return
		}
		pol, err := ParsePolicy(body)
		if err != nil {
			g.reject(w, r, http.StatusBadRequest, "bad_policy", err.Error(), 0)
			return
		}
		if err := g.SetPolicy(pol); err != nil {
			g.reject(w, r, http.StatusBadRequest, "bad_policy", err.Error(), 0)
			return
		}
		tab := g.table()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"op":"policy","rules":%d,"classes":%d,"reloads":%d}`+"\n",
			tab.Rules(), len(tab.classes), g.reloads.Load())
	default:
		g.reject(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
			"admission: GET or POST only", 0)
	}
}

// writeMetrics appends the repro_admission_* families to an inner
// /metrics exposition.
func (g *Gate) writeMetrics(w http.ResponseWriter) {
	tab := g.table()
	fmt.Fprintf(w, "# TYPE repro_admission_allowed_total counter\nrepro_admission_allowed_total %d\n", g.allowed.Load())
	fmt.Fprintf(w, "# TYPE repro_admission_denied_total counter\nrepro_admission_denied_total %d\n", g.denied.Load())
	fmt.Fprintf(w, "# TYPE repro_admission_rate_limited_total counter\nrepro_admission_rate_limited_total %d\n", g.rateLimited.Load())
	fmt.Fprintf(w, "# TYPE repro_admission_shed_total counter\n")
	g.classMu.Lock()
	order := append([]*classStats(nil), g.classOrder...)
	g.classMu.Unlock()
	for _, cs := range order {
		fmt.Fprintf(w, "repro_admission_shed_total{class=%q} %d\n", cs.name, cs.shed.Load())
	}
	fmt.Fprintf(w, "# TYPE repro_admission_policy_reloads_total counter\nrepro_admission_policy_reloads_total %d\n", g.reloads.Load())
	fmt.Fprintf(w, "# TYPE repro_admission_rules gauge\nrepro_admission_rules %d\n", tab.Rules())
	fmt.Fprintf(w, "# TYPE repro_admission_buckets gauge\nrepro_admission_buckets %d\n", g.buckets.len())
	g.schedMu.Lock()
	queued := g.sched.queuedLocked()
	running := g.sched.running
	g.schedMu.Unlock()
	fmt.Fprintf(w, "# TYPE repro_admission_queued gauge\nrepro_admission_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE repro_admission_running gauge\nrepro_admission_running %d\n", running)
	snap := g.shedWait.Snapshot()
	fmt.Fprintf(w, "# HELP repro_admission_shed_wait_seconds time shed requests spent queued before refusal\n")
	fmt.Fprintf(w, "# TYPE repro_admission_shed_wait_seconds histogram\n")
	for i, bound := range snap.Bounds {
		fmt.Fprintf(w, "repro_admission_shed_wait_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(bound.Seconds(), 'g', -1, 64), snap.CumulativeCounts[i])
	}
	fmt.Fprintf(w, "repro_admission_shed_wait_seconds_bucket{le=\"+Inf\"} %d\n", snap.Count)
	fmt.Fprintf(w, "repro_admission_shed_wait_seconds_sum %g\n", snap.Sum.Seconds())
	fmt.Fprintf(w, "repro_admission_shed_wait_seconds_count %d\n", snap.Count)
}
