package admission

import (
	"fmt"
	"net/netip"
)

// Action is a CIDR rule's verdict.
type Action int

const (
	// ActionAllow admits the request (optionally assigning a class).
	ActionAllow Action = iota
	// ActionDeny refuses the request at the door (403 "denied").
	ActionDeny
)

// ParseAction maps the policy file's action strings.
func ParseAction(s string) (Action, error) {
	switch s {
	case "", "allow":
		return ActionAllow, nil
	case "deny":
		return ActionDeny, nil
	}
	return 0, fmt.Errorf("admission: unknown action %q (want allow or deny)", s)
}

func (a Action) String() string {
	if a == ActionDeny {
		return "deny"
	}
	return "allow"
}

// trieValue is what a matching prefix resolves to: the verdict and
// the priority-class index assigned by the rule (-1 = policy default).
type trieValue struct {
	action Action
	class  int
}

// trieNode is one bit of the prefix tree. leaf is non-nil when a rule
// ends exactly here.
type trieNode struct {
	child [2]*trieNode
	leaf  *trieValue
}

// Trie is a longest-prefix-match binary trie over IPv4 and IPv6
// prefixes — the in-process form of the policy table (the portable
// fallback to the nftables ruleset EmitNFTables compiles from the
// same rules). Lookup walks the address bit by bit, remembering the
// deepest rule seen, so the most specific prefix always wins; among
// duplicate prefixes the later-inserted rule wins, matching the
// policy file's "later rules override earlier ones" reading and the
// linear-scan oracle the fuzz target compares against.
//
// A Trie is built once per policy compile and read-only afterwards,
// so concurrent Lookup needs no locking; hot reloads swap the whole
// compiled table atomically instead of mutating a live trie.
type Trie struct {
	root4, root6 trieNode
	n            int
}

// normalizePrefix masks p to its canonical form and lowers 4-in-6
// prefixes (::ffff:a.b.c.d/n with n >= 96) onto the IPv4 tree, so a
// v4-mapped client address and its plain v4 spelling hit the same
// rules.
func normalizePrefix(p netip.Prefix) (netip.Prefix, error) {
	if !p.IsValid() {
		return netip.Prefix{}, fmt.Errorf("admission: invalid prefix %v", p)
	}
	if a := p.Addr(); a.Is4In6() && p.Bits() >= 96 {
		p = netip.PrefixFrom(a.Unmap(), p.Bits()-96)
	}
	return p.Masked(), nil
}

// Len reports the number of distinct prefixes inserted.
func (t *Trie) Len() int { return t.n }

// insert adds one prefix → value mapping, overwriting an identical
// earlier prefix (later rule wins).
func (t *Trie) insert(p netip.Prefix, v trieValue) error {
	p, err := normalizePrefix(p)
	if err != nil {
		return err
	}
	node := &t.root6
	if p.Addr().Is4() {
		node = &t.root4
	}
	b := p.Addr().AsSlice()
	for i := 0; i < p.Bits(); i++ {
		bit := (b[i/8] >> (7 - i%8)) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if node.leaf == nil {
		t.n++
	}
	node.leaf = &v
	return nil
}

// lookup returns the value of the longest prefix containing a, and
// whether any prefix matched.
func (t *Trie) lookup(a netip.Addr) (trieValue, bool) {
	if !a.IsValid() {
		return trieValue{}, false
	}
	a = a.Unmap()
	node := &t.root6
	if a.Is4() {
		node = &t.root4
	}
	var best *trieValue
	if node.leaf != nil {
		best = node.leaf // a /0 rule
	}
	b := a.AsSlice()
	for i := 0; i < len(b)*8; i++ {
		bit := (b[i/8] >> (7 - i%8)) & 1
		node = node.child[bit]
		if node == nil {
			break
		}
		if node.leaf != nil {
			best = node.leaf
		}
	}
	if best == nil {
		return trieValue{}, false
	}
	return *best, true
}
