package admission

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// newTestGate compiles pol and wraps inner (default: 200 "ok") with a
// scripted clock pinned at clockAt(0).
func newTestGate(t *testing.T, pol *Policy, inner http.Handler) *Gate {
	t.Helper()
	if inner == nil {
		inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok"))
		})
	}
	g, err := New(inner, pol, Config{Now: func() time.Time { return clockAt(0) }})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The scheduler's shed policy, stepped synchronously: class 0 (gold)
// outranks class 1 (bulk); a gold arrival whose queue is full
// displaces the newest bulk waiter instead of being turned away, and
// bulk is only shed on arrival when nothing below it exists.
func TestSchedulerShedOrdering(t *testing.T) {
	var s scheduler
	now := clockAt(0)
	const goldCap, bulkCap, maxConc = 1, 2, 1

	// Occupy the single slot.
	if w, d, shed := s.tryAdmit(0, goldCap, maxConc, now); w != nil || d != nil || shed {
		t.Fatalf("first admit: got (%v, %v, %v), want immediate grant", w, d, shed)
	}

	b1, _, _ := s.tryAdmit(1, bulkCap, maxConc, now)
	b2, _, _ := s.tryAdmit(1, bulkCap, maxConc, now)
	if b1 == nil || b2 == nil {
		t.Fatal("bulk waiters under the queue cap were not enqueued")
	}

	// A third bulk arrival finds its queue full with nothing below it:
	// shed on arrival — bulk IS the lowest class present.
	if w, d, shed := s.tryAdmit(1, bulkCap, maxConc, now); w != nil || d != nil || !shed {
		t.Fatalf("bulk overflow: got (%v, %v, %v), want shed-on-arrival", w, d, shed)
	}

	g1, _, _ := s.tryAdmit(0, goldCap, maxConc, now)
	if g1 == nil {
		t.Fatal("gold waiter under the queue cap was not enqueued")
	}

	// Gold's queue is now full; the next gold arrival displaces the
	// NEWEST bulk waiter (b2), never another gold.
	g2, displaced, shed := s.tryAdmit(0, goldCap, maxConc, now)
	if g2 == nil || shed {
		t.Fatalf("gold overflow: got (%v, shed=%v), want displacement", g2, shed)
	}
	if displaced != b2 {
		t.Fatalf("displaced = %p, want the newest bulk waiter b2 (%p)", displaced, b2)
	}

	// Releases promote oldest-first within the highest occupied class:
	// g1, g2, then b1.
	for i, want := range []*waiter{g1, g2, b1} {
		if got := s.releaseLocked(maxConc); got != want {
			t.Fatalf("release %d promoted %p, want %p", i, got, want)
		}
	}
	if got := s.releaseLocked(maxConc); got != nil {
		t.Fatalf("release of the drained scheduler promoted %p", got)
	}
	if s.running != 0 {
		t.Fatalf("running = %d after full drain, want 0", s.running)
	}
}

// After a reload shrinks max_concurrent, releases drain the excess
// before any waiter is promoted again.
func TestSchedulerReleaseAfterBudgetShrink(t *testing.T) {
	var s scheduler
	now := clockAt(0)
	for i := 0; i < 3; i++ {
		if w, _, shed := s.tryAdmit(0, 4, 3, now); w != nil || shed {
			t.Fatalf("admit %d under budget 3 did not grant immediately", i)
		}
	}
	w1, _, _ := s.tryAdmit(0, 4, 3, now)
	if w1 == nil {
		t.Fatal("fourth request was not queued")
	}
	// Budget shrinks 3 → 1: the first two releases must not promote.
	if got := s.releaseLocked(1); got != nil {
		t.Fatalf("release at running=3, max=1 promoted %p", got)
	}
	if got := s.releaseLocked(1); got != nil {
		t.Fatalf("release at running=2, max=1 promoted %p", got)
	}
	if got := s.releaseLocked(1); got != w1 {
		t.Fatalf("release at running=1, max=1 promoted %p, want %p", got, w1)
	}
	if s.running != 1 {
		t.Fatalf("running = %d, want 1", s.running)
	}
}

func TestSchedulerExpireRemovesWaiter(t *testing.T) {
	var s scheduler
	now := clockAt(0)
	s.tryAdmit(0, 4, 1, now) // occupy
	w1, _, _ := s.tryAdmit(0, 4, 1, now)
	w2, _, _ := s.tryAdmit(0, 4, 1, now)
	if !s.expireLocked(w1) {
		t.Fatal("expire of a queued waiter reported already-done")
	}
	if s.expireLocked(w1) {
		t.Fatal("second expire of the same waiter succeeded")
	}
	if got := s.releaseLocked(1); got != w2 {
		t.Fatalf("release promoted %p, want w2 %p (w1 expired)", got, w2)
	}
	// A waiter that was already granted must refuse the expiry: the
	// slot is held and has to be released, not abandoned.
	if s.expireLocked(w2) {
		t.Fatal("expire of a granted waiter succeeded; its slot would leak")
	}
}

// admit honors the request context: a canceled request sheds instead
// of holding its queue place forever.
func TestAdmitCanceledContextSheds(t *testing.T) {
	pol := &Policy{MaxConcurrent: 1}
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 4, 1); out != admitGranted {
		t.Fatalf("first admit = %v, want granted", out)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, _ := g.admit(ctx, 0, 4, 1)
	if out != admitShed {
		t.Fatalf("admit with canceled ctx = %v, want shed", out)
	}
	g.release()
	g.schedMu.Lock()
	queued, running := g.sched.queuedLocked(), g.sched.running
	g.schedMu.Unlock()
	if queued != 0 || running != 0 {
		t.Fatalf("queued=%d running=%d after drain, want 0/0", queued, running)
	}
}

// A release races the releaser against waiters: the promoted waiter
// gets admitGranted and MUST release in turn.
func TestAdmitPromotionChain(t *testing.T) {
	pol := &Policy{MaxConcurrent: 1, MaxQueueWait: "30s"}
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 8, 1); out != admitGranted {
		t.Fatal("first admit not granted")
	}
	const waiters = 5
	outcomes := make(chan admitOutcome, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _ := g.admit(context.Background(), 0, 8, 1)
			if out == admitGranted {
				g.release()
			}
			outcomes <- out
		}()
	}
	waitQueued(t, g, waiters)
	g.release() // hand the slot down the chain
	wg.Wait()
	close(outcomes)
	for out := range outcomes {
		if out != admitGranted {
			t.Fatalf("waiter outcome = %v, want granted", out)
		}
	}
	g.schedMu.Lock()
	running := g.sched.running
	g.schedMu.Unlock()
	if running != 0 {
		t.Fatalf("running = %d after the chain drained, want 0", running)
	}
}

// waitQueued blocks until n waiters sit in the gate's queues.
func waitQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		g.schedMu.Lock()
		queued := g.sched.queuedLocked()
		g.schedMu.Unlock()
		if queued >= n {
			return
		}
		select {
		case <-deadline.C:
			t.Fatalf("only %d of %d waiters queued before the deadline", queued, n)
		case <-tick.C:
		}
	}
}

// Hot-reloading to a policy with the queue stage disabled flushes
// every queued waiter as granted: nothing may block on a stage that no
// longer exists, and none of them may be dropped.
func TestSetPolicyDisablingQueueFlushesWaiters(t *testing.T) {
	pol := &Policy{MaxConcurrent: 1, MaxQueueWait: "30s"}
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 8, 1); out != admitGranted {
		t.Fatal("first admit not granted")
	}
	const waiters = 4
	outcomes := make(chan admitOutcome, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _ := g.admit(context.Background(), 0, 8, 1)
			outcomes <- out
		}()
	}
	waitQueued(t, g, waiters)
	if err := g.SetPolicy(&Policy{}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(outcomes)
	for out := range outcomes {
		if out != admitGranted {
			t.Fatalf("flushed waiter outcome = %v, want granted", out)
		}
	}
}

// Every shed — on arrival, by displacement, or by expiry — lands in
// the class counter and the shed-wait histogram; a request refused at
// the door must be just as visible as one that queued first.
func TestShedOnArrivalIsCounted(t *testing.T) {
	pol := &Policy{MaxConcurrent: 1}
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 4, 1); out != admitGranted {
		t.Fatal("first admit not granted")
	}
	defer g.release()
	if out, _ := g.admit(context.Background(), 0, 0, 1); out != admitShed {
		t.Fatal("zero-cap queue did not shed on arrival")
	}
	if got := g.classStatsFor(0).shed.Load(); got != 1 {
		t.Fatalf("class shed counter = %d, want 1", got)
	}
	if snap := g.shedWait.Snapshot(); snap.Count != 1 {
		t.Fatalf("shed histogram count = %d, want 1", snap.Count)
	}
}

// Queue waits are bounded by max_queue_wait: with the budget exhausted
// and no releases coming, a request sheds after its wait budget.
func TestAdmitQueueWaitBudgetSheds(t *testing.T) {
	pol := &Policy{MaxConcurrent: 1, MaxQueueWait: "1ms"} // floored to queueWaitFloor
	g := newTestGate(t, pol, nil)
	if out, _ := g.admit(context.Background(), 0, 4, 1); out != admitGranted {
		t.Fatal("first admit not granted")
	}
	out, _ := g.admit(context.Background(), 0, 4, 1)
	if out != admitShed {
		t.Fatalf("admit past the wait budget = %v, want shed", out)
	}
	g.release()
}

// End-to-end over HTTP: the wrapped handler is reached at most
// max_concurrent at a time, and overflow past the queues is a typed
// 503.
func TestGateConcurrencyBudgetOverHTTP(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inFlight--
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	pol := &Policy{MaxConcurrent: 2, MaxQueueWait: "30s", Classes: []ClassSpec{{Name: "default", Queue: 8}}}
	g := newTestGate(t, pol, inner)

	const clients = 6
	codes := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/predict", nil))
			codes <- rec.Code
		}()
	}
	waitQueued(t, g, clients-2)
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("status = %d, want 200 for every queued request", code)
		}
	}
	if maxInFlight > 2 {
		t.Fatalf("max in-flight = %d, want <= max_concurrent 2", maxInFlight)
	}
}
