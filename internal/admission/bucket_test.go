package admission

import (
	"testing"
	"time"
)

// clockAt builds a fixed test epoch; the package is detpath-scoped, so
// tests script the clock instead of reading it.
func clockAt(d time.Duration) time.Time {
	return time.Unix(1_700_000_000, 0).Add(d)
}

func TestBucketRefillDeterminism(t *testing.T) {
	b := newBuckets()
	const rate, burst = 2.0, 2.0

	// The first burst drains the bucket.
	for i := 0; i < 2; i++ {
		if ok, _ := b.take("k", rate, burst, clockAt(0)); !ok {
			t.Fatalf("take %d of the initial burst refused", i)
		}
	}
	ok, wait := b.take("k", rate, burst, clockAt(0))
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms (1 token at 2/s)", wait)
	}

	// 250ms refills half a token: still refused, half the wait left.
	ok, wait = b.take("k", rate, burst, clockAt(250*time.Millisecond))
	if ok || wait != 250*time.Millisecond {
		t.Fatalf("after 250ms: ok=%v wait=%v, want refused with 250ms", ok, wait)
	}

	// Another 250ms completes the token.
	if ok, _ = b.take("k", rate, burst, clockAt(500*time.Millisecond)); !ok {
		t.Fatal("take after a full refill interval refused")
	}

	// The same timestamp sequence is a pure function: replay it on a
	// fresh table and every outcome matches.
	b2 := newBuckets()
	steps := []struct {
		at   time.Duration
		ok   bool
		wait time.Duration
	}{
		{0, true, 0}, {0, true, 0},
		{0, false, 500 * time.Millisecond},
		{250 * time.Millisecond, false, 250 * time.Millisecond},
		{500 * time.Millisecond, true, 0},
	}
	for i, s := range steps {
		ok, wait := b2.take("k", rate, burst, clockAt(s.at))
		if ok != s.ok || wait != s.wait {
			t.Fatalf("replay step %d: got (%v, %v), want (%v, %v)", i, ok, wait, s.ok, s.wait)
		}
	}
}

func TestBucketBurstCap(t *testing.T) {
	b := newBuckets()
	if ok, _ := b.take("k", 1, 3, clockAt(0)); !ok {
		t.Fatal("first take refused")
	}
	// An hour idle refills to burst, not rate*3600.
	for i := 0; i < 3; i++ {
		if ok, _ := b.take("k", 1, 3, clockAt(time.Hour)); !ok {
			t.Fatalf("take %d after refill-to-burst refused", i)
		}
	}
	if ok, _ := b.take("k", 1, 3, clockAt(time.Hour)); ok {
		t.Fatal("take 4 admitted: refill overshot the burst cap")
	}
}

func TestBucketReloadShrinksBurst(t *testing.T) {
	b := newBuckets()
	// Bank 4 tokens under burst 5.
	if ok, _ := b.take("k", 1, 5, clockAt(0)); !ok {
		t.Fatal("take under burst 5 refused")
	}
	// A reload shrank the burst to 2: the banked balance is clamped,
	// so only 2 of the 4 banked tokens survive.
	for i := 0; i < 2; i++ {
		if ok, _ := b.take("k", 1, 2, clockAt(0)); !ok {
			t.Fatalf("take %d under the shrunk burst refused", i)
		}
	}
	if ok, _ := b.take("k", 1, 2, clockAt(0)); ok {
		t.Fatal("shrunk burst still honored the old banked balance")
	}
}

func TestBucketKeysAreIndependent(t *testing.T) {
	b := newBuckets()
	if ok, _ := b.take("a", 1, 1, clockAt(0)); !ok {
		t.Fatal("first client refused")
	}
	if ok, _ := b.take("a", 1, 1, clockAt(0)); ok {
		t.Fatal("first client's second take admitted")
	}
	if ok, _ := b.take("b", 1, 1, clockAt(0)); !ok {
		t.Fatal("second client starved by the first client's bucket")
	}
	if b.len() != 2 {
		t.Fatalf("len = %d, want 2", b.len())
	}
}

func TestBucketSweepEvictsIdle(t *testing.T) {
	b := newBuckets()
	b.take("old", 1, 1, clockAt(0))
	b.take("fresh", 1, 1, clockAt(bucketIdleTTL))
	b.mu.Lock()
	b.sweep(clockAt(bucketIdleTTL + time.Second))
	b.mu.Unlock()
	if b.len() != 1 {
		t.Fatalf("len = %d after sweep, want 1 (only the fresh bucket)", b.len())
	}
	b.mu.Lock()
	if len(b.entries) != 1 || b.entries[0].key != "fresh" {
		t.Fatalf("entries = %v, want just the fresh bucket", b.entries)
	}
	b.mu.Unlock()
}

func TestBucketSweepTriggersOnTakeCount(t *testing.T) {
	b := newBuckets()
	b.take("idle", 1000, 1000, clockAt(0))
	// gcEvery-1 more takes from a live key push the counter over the
	// sweep threshold at a timestamp where the idle bucket has expired.
	for i := 1; i < gcEvery; i++ {
		b.take("live", 1000, 1000, clockAt(bucketIdleTTL+time.Minute))
	}
	if b.len() != 1 {
		t.Fatalf("len = %d after %d takes, want 1 (idle bucket swept)", b.len(), gcEvery)
	}
}
