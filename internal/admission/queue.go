package admission

import (
	"context"
	"time"
)

// Stage 3: priority classes with deadline-aware queueing. A bounded
// per-class queue sits ahead of the batcher; when the concurrency
// budget is exhausted and a queue overflows, the LOWEST class sheds
// first — a high-class arrival displaces the newest waiter of the
// lowest occupied class below it rather than being turned away. Every
// shed is typed (503 "overloaded") and its time-in-queue lands in the
// shed histogram, so deliberate degradation is measurable.

// admitOutcome says how one pass through the scheduler ended.
type admitOutcome int

const (
	// admitGranted: the request holds a concurrency slot; the caller
	// must release it.
	admitGranted admitOutcome = iota
	// admitShed: the budget was exceeded and this request lost —
	// rejected on arrival, displaced by a higher class, or expired in
	// the queue.
	admitShed
)

// waiter is one queued request. ch is buffered so a grant or shed
// never blocks the scheduler on a waiter that is concurrently timing
// out; the done flag arbitrates that race under the scheduler lock.
type waiter struct {
	ch    chan admitOutcome
	class int
	enq   time.Time
	done  bool
}

// scheduler is the concurrency budget + priority queues. All state is
// guarded by the Gate's mutex discipline: methods lock g.schedMu via
// the Gate, so the struct itself stays plain.
type scheduler struct {
	running int
	queues  [][]*waiter // index = priority (0 highest); grown on demand
}

// queueFor returns the queue slice index for class, growing the table
// (a reload may add classes).
func (s *scheduler) queueFor(class int) int {
	for len(s.queues) <= class {
		s.queues = append(s.queues, nil)
	}
	return class
}

// tryAdmit is the locked fast path: grab a slot, enqueue, or decide a
// shed. It returns (nil, admitGranted) on an immediate grant, (w,
// admitGranted) when the request must wait on w.ch, and (nil,
// admitShed) when the request is refused on arrival. shedded receives
// any displaced waiter so the caller can record its shed outside the
// lock.
func (s *scheduler) tryAdmit(class, queueCap, maxConcurrent int, now time.Time) (w *waiter, displaced *waiter, shed bool) {
	if s.running < maxConcurrent {
		s.running++
		return nil, nil, false
	}
	qi := s.queueFor(class)
	if len(s.queues[qi]) >= queueCap {
		// This class's queue is full: displace the newest waiter of
		// the lowest occupied class BELOW this one; if none exists,
		// the arrival itself is the lowest traffic present — shed it.
		for low := len(s.queues) - 1; low > class; low-- {
			q := s.queues[low]
			if n := len(q); n > 0 {
				displaced = q[n-1]
				displaced.done = true
				s.queues[low] = q[:n-1]
				break
			}
		}
		if displaced == nil {
			return nil, nil, true
		}
	}
	w = &waiter{ch: make(chan admitOutcome, 1), class: class, enq: now}
	s.queues[qi] = append(s.queues[qi], w)
	return w, displaced, false
}

// releaseLocked frees one slot and promotes the oldest waiter of the
// highest occupied class. It returns the promoted waiter (already
// granted) so the caller can signal it outside the lock. max is the
// CURRENT policy's concurrency budget: after a reload shrank it,
// releases drain the excess before waiters are promoted again.
func (s *scheduler) releaseLocked(max int) *waiter {
	s.running--
	if max > 0 && s.running >= max {
		return nil
	}
	for class := 0; class < len(s.queues); class++ {
		q := s.queues[class]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		s.queues[class] = q[:len(q)-1]
		w.done = true
		s.running++
		return w
	}
	return nil
}

// expireLocked removes w from its queue after a deadline/cancel; it
// reports false when w was already granted or displaced (the caller
// must then honor that outcome instead).
func (s *scheduler) expireLocked(w *waiter) bool {
	if w.done {
		return false
	}
	w.done = true
	qi := w.class
	q := s.queues[qi]
	for i, qw := range q {
		if qw == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			s.queues[qi] = q[:len(q)-1]
			return true
		}
	}
	return true // unreachable: an undone waiter is always queued
}

// queuedLocked counts waiting requests across all classes.
func (s *scheduler) queuedLocked() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// admit runs stage 3 for one request: immediate grant, queue + wait,
// or shed. wait caps the queue time (the policy's max_queue_wait);
// the request context's own deadline/cancel also ends the wait. On
// admitGranted the caller MUST call g.release when the request
// finishes.
func (g *Gate) admit(ctx context.Context, class, queueCap, maxConcurrent int) (admitOutcome, time.Duration) {
	now := g.now()
	g.schedMu.Lock()
	w, displaced, shed := g.sched.tryAdmit(class, queueCap, maxConcurrent, now)
	g.schedMu.Unlock()
	if displaced != nil {
		g.recordShed(displaced.class, now.Sub(displaced.enq))
		displaced.ch <- admitShed
	}
	if shed {
		g.recordShed(class, 0) // refused on arrival: zero queue time
		return admitShed, 0
	}
	if w == nil {
		return admitGranted, 0
	}

	timer := time.NewTimer(g.queueWaitBudget(ctx))
	defer timer.Stop()
	select {
	case out := <-w.ch:
		return out, g.now().Sub(w.enq)
	case <-ctx.Done():
	case <-timer.C:
	}
	// Deadline or cancel while queued: remove ourselves — unless a
	// grant or displacement raced in, in which case that outcome
	// stands (a granted slot must be used-and-released, never leaked).
	g.schedMu.Lock()
	expired := g.sched.expireLocked(w)
	g.schedMu.Unlock()
	if !expired {
		out := <-w.ch // buffered: already delivered
		return out, g.now().Sub(w.enq)
	}
	waited := g.now().Sub(w.enq)
	g.recordShed(w.class, waited)
	return admitShed, waited
}

// queueWaitFloor keeps a zero-config queue wait sane.
const queueWaitFloor = 10 * time.Millisecond

// queueWaitBudget resolves how long this request may queue: the
// policy's max_queue_wait, shrunk to the request's own remaining
// deadline when that is sooner.
func (g *Gate) queueWaitBudget(ctx context.Context) time.Duration {
	budget := g.table().maxQueueWait
	if budget < queueWaitFloor {
		budget = queueWaitFloor
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := dl.Sub(g.now()); remain < budget {
			budget = remain
		}
	}
	return budget
}

// release frees the request's concurrency slot and hands it to the
// highest-priority waiter, if any.
func (g *Gate) release() {
	max := g.table().maxConcurrent
	g.schedMu.Lock()
	w := g.sched.releaseLocked(max)
	g.schedMu.Unlock()
	if w != nil {
		w.ch <- admitGranted
	}
}

// recordShed counts one shed against class and observes the time the
// request spent queued (zero for shed-on-arrival) in the shed
// histogram.
func (g *Gate) recordShed(class int, wait time.Duration) {
	g.shedWait.Observe(wait)
	g.classStatsFor(class).shed.Add(1)
}
