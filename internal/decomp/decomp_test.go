package decomp

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNewPartitionValidation(t *testing.T) {
	cases := []struct {
		nx, ny, px, py int
		ok             bool
	}{
		{64, 64, 2, 2, true},
		{10, 10, 10, 10, true},
		{0, 10, 1, 1, false},
		{10, 10, 0, 1, false},
		{10, 10, 11, 1, false},
		{10, 10, 1, 11, false},
		{100, 7, 8, 7, true},
	}
	for _, c := range cases {
		_, err := NewPartition(c.nx, c.ny, c.px, c.py)
		if (err == nil) != c.ok {
			t.Errorf("NewPartition(%d,%d,%d,%d): err = %v, want ok=%v", c.nx, c.ny, c.px, c.py, err, c.ok)
		}
	}
}

func TestBlockBalanced(t *testing.T) {
	p, _ := NewPartition(10, 10, 3, 3)
	// 10 points into 3 blocks: 3,3,4 or 3,4,3 — balanced split gives
	// sizes differing by at most one.
	total := 0
	for cy := 0; cy < 3; cy++ {
		for cx := 0; cx < 3; cx++ {
			b := p.Block(cx, cy)
			if b.Width() < 3 || b.Width() > 4 || b.Height() < 3 || b.Height() > 4 {
				t.Errorf("unbalanced block %v", b)
			}
			total += b.Points()
		}
	}
	if total != 100 {
		t.Fatalf("blocks cover %d points, want 100", total)
	}
}

// TestPartitionCoversDomain is the Fig. 2 structural check: blocks
// tile the domain exactly — every point owned once, no overlaps, no
// gaps — for arbitrary grid and process-grid sizes.
func TestPartitionCoversDomain(t *testing.T) {
	f := func(nxRaw, nyRaw, pxRaw, pyRaw uint8) bool {
		nx := int(nxRaw%40) + 4
		ny := int(nyRaw%40) + 4
		px := int(pxRaw%4) + 1
		py := int(pyRaw%4) + 1
		p, err := NewPartition(nx, ny, px, py)
		if err != nil {
			return true // skip invalid combos
		}
		owned := make([]int, nx*ny)
		for r := 0; r < p.Ranks(); r++ {
			b := p.BlockOfRank(r)
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					owned[j*nx+i]++
				}
			}
		}
		for _, c := range owned {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OwnerOf agrees with block membership everywhere.
func TestQuickOwnerOfConsistent(t *testing.T) {
	f := func(nxRaw, pxRaw, pyRaw uint8) bool {
		nx := int(nxRaw%30) + 6
		px := int(pxRaw%5) + 1
		py := int(pyRaw%5) + 1
		p, err := NewPartition(nx, nx, px, py)
		if err != nil {
			return true
		}
		for j := 0; j < nx; j++ {
			for i := 0; i < nx; i++ {
				r := p.OwnerOf(i, j)
				if !p.BlockOfRank(r).Contains(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	p, _ := NewPartition(16, 16, 4, 2)
	for r := 0; r < p.Ranks(); r++ {
		cx, cy := p.CoordsOfRank(r)
		if p.RankAt(cx, cy) != r {
			t.Fatalf("rank %d round trip gave %d", r, p.RankAt(cx, cy))
		}
	}
}

func TestHaloBlockClamping(t *testing.T) {
	p, _ := NewPartition(16, 16, 2, 2)
	// Corner block (0,0): halo cut at west and south.
	hb, miss := p.HaloBlock(0, 0, 2)
	if miss != [4]int{2, 0, 2, 0} {
		t.Fatalf("corner missing = %v", miss)
	}
	if hb.I0 != 0 || hb.I1 != 10 || hb.J0 != 0 || hb.J1 != 10 {
		t.Fatalf("corner halo block = %v", hb)
	}
	// Interior-facing sides extend into the neighbour.
	hb, miss = p.HaloBlock(1, 1, 2)
	if miss != [4]int{0, 2, 0, 2} {
		t.Fatalf("far corner missing = %v", miss)
	}
	if hb.I0 != 6 || hb.J0 != 6 {
		t.Fatalf("far corner halo block = %v", hb)
	}
}

func TestSplitGatherRoundTrip(t *testing.T) {
	p, _ := NewPartition(12, 10, 3, 2)
	g := tensor.NewRNG(5)
	full := tensor.Normal(g, 0, 1, 4, 10, 12) // CHW: [4, Ny, Nx]
	parts := p.SplitCHW(full, 0)
	if len(parts) != 6 {
		t.Fatalf("got %d parts", len(parts))
	}
	back := p.GatherCHW(parts)
	if !back.Equal(full) {
		t.Fatalf("gather(split(x)) != x")
	}
}

// Property: split/gather is the identity for random shapes and
// process grids.
func TestQuickSplitGatherIdentity(t *testing.T) {
	f := func(seed int64, nxRaw, pxRaw, pyRaw uint8) bool {
		nx := int(nxRaw%20) + 6
		px := int(pxRaw%3) + 1
		py := int(pyRaw%3) + 1
		p, err := NewPartition(nx, nx, px, py)
		if err != nil {
			return true
		}
		g := tensor.NewRNG(seed)
		full := tensor.Normal(g, 0, 1, 2, nx, nx)
		return p.GatherCHW(p.SplitCHW(full, 0)).Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWithHaloContents(t *testing.T) {
	// 1 channel 8x8 grid, values = j*8+i, split 2x2 with halo 2.
	p, _ := NewPartition(8, 8, 2, 2)
	full := tensor.New(1, 8, 8)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			full.Set(float64(j*8+i), 0, j, i)
		}
	}
	parts := p.SplitCHW(full, 2)
	// Rank 0 = block [0:4)x[0:4), extended frame 8x8 with west/south
	// halo zero (physical boundary) and east/north halo from
	// neighbours.
	p0 := parts[0]
	if p0.Dim(1) != 8 || p0.Dim(2) != 8 {
		t.Fatalf("halo piece shape %v", p0.Shape())
	}
	// Zero at the physical boundary padding.
	if p0.At(0, 0, 0) != 0 || p0.At(0, 7, 0) != 0 && p0.At(0, 0, 7) != 0 {
		t.Fatalf("physical boundary padding not zero")
	}
	// Local (2,2) = global (0,0) = 0; local (2,3) = global (0,1).
	if p0.At(0, 2, 2) != 0 || p0.At(0, 2, 3) != 1 {
		t.Fatalf("interior misplaced: %g %g", p0.At(0, 2, 2), p0.At(0, 2, 3))
	}
	// East halo: local (2,6) = global (0,4) = 4 (from the neighbour).
	if p0.At(0, 2, 6) != 4 {
		t.Fatalf("east halo = %g, want 4", p0.At(0, 2, 6))
	}
	// North halo: local (6,2) = global (4,0) = 32.
	if p0.At(0, 6, 2) != 32 {
		t.Fatalf("north halo = %g, want 32", p0.At(0, 6, 2))
	}
	// Corner halo: local (6,6) = global (4,4) = 36.
	if p0.At(0, 6, 6) != 36 {
		t.Fatalf("corner halo = %g, want 36", p0.At(0, 6, 6))
	}
}

// Property: for interior data, cropping the halo back out recovers
// the bare block split.
func TestQuickHaloStripInverse(t *testing.T) {
	f := func(seed int64, haloRaw uint8) bool {
		halo := int(haloRaw % 3)
		p, err := NewPartition(12, 12, 2, 2)
		if err != nil {
			return true
		}
		g := tensor.NewRNG(seed)
		full := tensor.Normal(g, 0, 1, 3, 12, 12)
		bare := p.SplitCHW(full, 0)
		haloed := p.SplitCHW(full, halo)
		for r := range bare {
			if !StripInterior(haloed[r], halo).Equal(bare[r]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitValidation(t *testing.T) {
	p, _ := NewPartition(8, 8, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SplitCHW wrong shape must panic")
		}
	}()
	p.SplitCHW(tensor.New(1, 4, 4), 0)
}

func TestGatherValidation(t *testing.T) {
	p, _ := NewPartition(8, 8, 2, 2)
	full := tensor.New(1, 8, 8)
	parts := p.SplitCHW(full, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("GatherCHW wrong piece count must panic")
		}
	}()
	p.GatherCHW(parts[:2])
}

func TestBlockStringAndAccessors(t *testing.T) {
	b := Block{I0: 1, I1: 4, J0: 2, J1: 8}
	if b.Width() != 3 || b.Height() != 6 || b.Points() != 18 {
		t.Fatalf("accessors wrong")
	}
	if b.String() == "" {
		t.Fatalf("empty String")
	}
	if !b.Contains(1, 2) || b.Contains(4, 2) || b.Contains(1, 8) {
		t.Fatalf("Contains wrong at edges")
	}
}
