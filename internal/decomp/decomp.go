// Package decomp implements the spatial domain decomposition at the
// heart of the paper's scheme (§III, Fig. 2): each training snapshot is
// split into Px × Py rectangular subdomains, one per MPI rank, and each
// rank trains an independent network on its block. The package provides
// the balanced partition arithmetic, halo-extended windows (the
// "overlapping inputs for neighbouring processes" of §III), and the
// split/gather operations between full-domain tensors and per-rank
// subdomain tensors.
//
// Rank ↔ block mapping is row-major and identical to mpi.Cart:
// rank = cy·Px + cx.
package decomp

import (
	"fmt"

	"repro/internal/tensor"
)

// Partition describes the decomposition of an Nx × Ny point grid into
// Px × Py blocks. Blocks are balanced: block cx covers columns
// [cx·Nx/Px, (cx+1)·Nx/Px), so sizes differ by at most one point.
type Partition struct {
	Nx, Ny int // global grid points per direction
	Px, Py int // process grid
}

// NewPartition validates and builds a partition.
func NewPartition(nx, ny, px, py int) (*Partition, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("decomp: non-positive grid %dx%d", nx, ny)
	}
	if px <= 0 || py <= 0 {
		return nil, fmt.Errorf("decomp: non-positive process grid %dx%d", px, py)
	}
	if px > nx || py > ny {
		return nil, fmt.Errorf("decomp: more blocks (%dx%d) than points (%dx%d)", px, py, nx, ny)
	}
	return &Partition{Nx: nx, Ny: ny, Px: px, Py: py}, nil
}

// Ranks returns the total number of blocks (= MPI ranks).
func (p *Partition) Ranks() int { return p.Px * p.Py }

// Block is a half-open index window [I0,I1) × [J0,J1) in global grid
// coordinates (I indexes columns/x, J rows/y).
type Block struct {
	I0, I1, J0, J1 int
}

// Width returns the number of columns in the block.
func (b Block) Width() int { return b.I1 - b.I0 }

// Height returns the number of rows in the block.
func (b Block) Height() int { return b.J1 - b.J0 }

// Points returns the number of grid points in the block.
func (b Block) Points() int { return b.Width() * b.Height() }

// Contains reports whether global point (i, j) lies in the block.
func (b Block) Contains(i, j int) bool {
	return i >= b.I0 && i < b.I1 && j >= b.J0 && j < b.J1
}

// String implements fmt.Stringer.
func (b Block) String() string {
	return fmt.Sprintf("[%d:%d)x[%d:%d)", b.I0, b.I1, b.J0, b.J1)
}

// Block returns the window of the block at process coordinates
// (cx, cy).
func (p *Partition) Block(cx, cy int) Block {
	if cx < 0 || cx >= p.Px || cy < 0 || cy >= p.Py {
		panic(fmt.Sprintf("decomp: block coords (%d,%d) outside %dx%d", cx, cy, p.Px, p.Py))
	}
	return Block{
		I0: cx * p.Nx / p.Px, I1: (cx + 1) * p.Nx / p.Px,
		J0: cy * p.Ny / p.Py, J1: (cy + 1) * p.Ny / p.Py,
	}
}

// BlockOfRank returns the window of the given rank (row-major
// rank = cy·Px + cx, matching mpi.Cart).
func (p *Partition) BlockOfRank(rank int) Block {
	if rank < 0 || rank >= p.Ranks() {
		panic(fmt.Sprintf("decomp: rank %d outside %d blocks", rank, p.Ranks()))
	}
	return p.Block(rank%p.Px, rank/p.Px)
}

// CoordsOfRank returns the process coordinates of a rank.
func (p *Partition) CoordsOfRank(rank int) (cx, cy int) {
	if rank < 0 || rank >= p.Ranks() {
		panic(fmt.Sprintf("decomp: rank %d outside %d blocks", rank, p.Ranks()))
	}
	return rank % p.Px, rank / p.Px
}

// RankAt returns the rank owning process coordinates (cx, cy).
func (p *Partition) RankAt(cx, cy int) int {
	if cx < 0 || cx >= p.Px || cy < 0 || cy >= p.Py {
		panic(fmt.Sprintf("decomp: coords (%d,%d) outside %dx%d", cx, cy, p.Px, p.Py))
	}
	return cy*p.Px + cx
}

// OwnerOf returns the rank owning global point (i, j).
func (p *Partition) OwnerOf(i, j int) int {
	if i < 0 || i >= p.Nx || j < 0 || j >= p.Ny {
		panic(fmt.Sprintf("decomp: point (%d,%d) outside %dx%d", i, j, p.Nx, p.Ny))
	}
	// Invert the balanced split: find cx with cx·Nx/Px ≤ i < (cx+1)·Nx/Px.
	cx := (i*p.Px + p.Px - 1) / p.Nx
	for cx > 0 && cx*p.Nx/p.Px > i {
		cx--
	}
	for (cx+1)*p.Nx/p.Px <= i {
		cx++
	}
	cy := (j*p.Py + p.Py - 1) / p.Ny
	for cy > 0 && cy*p.Ny/p.Py > j {
		cy--
	}
	for (cy+1)*p.Ny/p.Py <= j {
		cy++
	}
	return p.RankAt(cx, cy)
}

// HaloBlock returns the block at (cx, cy) grown by halo points on
// every side and clamped to the domain. The second return value
// reports, per side, how many of the requested halo points were cut
// off by the physical boundary (west, east, south, north) — the
// caller zero-pads those, which is exactly the paper's treatment of
// subdomains that touch the domain boundary.
func (p *Partition) HaloBlock(cx, cy, halo int) (Block, [4]int) {
	if halo < 0 {
		panic(fmt.Sprintf("decomp: negative halo %d", halo))
	}
	b := p.Block(cx, cy)
	g := Block{I0: b.I0 - halo, I1: b.I1 + halo, J0: b.J0 - halo, J1: b.J1 + halo}
	var missing [4]int // west, east, south, north
	if g.I0 < 0 {
		missing[0] = -g.I0
		g.I0 = 0
	}
	if g.I1 > p.Nx {
		missing[1] = g.I1 - p.Nx
		g.I1 = p.Nx
	}
	if g.J0 < 0 {
		missing[2] = -g.J0
		g.J0 = 0
	}
	if g.J1 > p.Ny {
		missing[3] = g.J1 - p.Ny
		g.J1 = p.Ny
	}
	return g, missing
}

// SplitCHW cuts a full-domain CHW tensor [C, Ny, Nx] into one tensor
// per rank. With halo = 0 each piece is the bare block. With halo > 0
// each piece has shape [C, height+2·halo, width+2·halo]: interior data
// where a neighbouring block provides it, zeros where the window
// crosses the physical boundary. This produces the "overlapping
// inputs" of §III used by the neighbour-padding strategy.
func (p *Partition) SplitCHW(t *tensor.Tensor, halo int) []*tensor.Tensor {
	if t.Rank() != 3 || t.Dim(1) != p.Ny || t.Dim(2) != p.Nx {
		panic(fmt.Sprintf("decomp: SplitCHW tensor %v does not match grid %dx%d", t.Shape(), p.Nx, p.Ny))
	}
	c := t.Dim(0)
	t4 := t.Reshape(1, c, p.Ny, p.Nx)
	out := make([]*tensor.Tensor, p.Ranks())
	for r := 0; r < p.Ranks(); r++ {
		cx, cy := p.CoordsOfRank(r)
		b := p.Block(cx, cy)
		clamped, miss := p.HaloBlock(cx, cy, halo)
		h := b.Height() + 2*halo
		w := b.Width() + 2*halo
		piece := tensor.New(1, c, h, w)
		src := tensor.SubImage(t4, clamped.J0, clamped.J1, clamped.I0, clamped.I1)
		// Destination offset: where the clamped window begins inside
		// the halo-extended local frame.
		tensor.SetSubImage(piece, src, miss[2], miss[0])
		out[r] = piece.Reshape(c, h, w)
	}
	return out
}

// GatherCHW reassembles per-rank interior tensors (no halo) into a
// full-domain CHW tensor, the inverse of SplitCHW with halo = 0.
func (p *Partition) GatherCHW(parts []*tensor.Tensor) *tensor.Tensor {
	if len(parts) != p.Ranks() {
		panic(fmt.Sprintf("decomp: GatherCHW got %d pieces, need %d", len(parts), p.Ranks()))
	}
	c := parts[0].Dim(0)
	full := tensor.New(c, p.Ny, p.Nx)
	full4 := full.Reshape(1, c, p.Ny, p.Nx)
	for r, piece := range parts {
		b := p.BlockOfRank(r)
		if piece.Rank() != 3 || piece.Dim(0) != c || piece.Dim(1) != b.Height() || piece.Dim(2) != b.Width() {
			panic(fmt.Sprintf("decomp: GatherCHW piece %d shape %v does not match block %v", r, piece.Shape(), b))
		}
		tensor.SetSubImage(full4, piece.Reshape(1, c, b.Height(), b.Width()), b.J0, b.I0)
	}
	return full
}

// StripInterior removes a halo of the given width from a CHW tensor,
// the inverse of the extension SplitCHW applies.
func StripInterior(t *tensor.Tensor, halo int) *tensor.Tensor {
	if halo == 0 {
		return t.Clone()
	}
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	cropped := tensor.Crop2D(t.Reshape(1, c, h, w), halo)
	return cropped.Reshape(c, h-2*halo, w-2*halo)
}
