// Package analysis is the repo's static-analysis suite: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, diagnostics, testdata fixtures) plus five
// repo-specific analyzers that turn the runtime invariants PR 1-6
// established by convention into properties no commit can violate.
//
// Why not golang.org/x/tools? The build environment is hermetic — the
// module has no dependencies and the image carries no module cache — so
// the framework is rebuilt here on the standard library alone:
// packages are enumerated and compiled with `go list -deps -export`,
// their dependencies are imported from the build cache's export data
// via go/importer's gc lookup mode, and syntax is type-checked with
// go/types exactly as a vet tool would. The surface mirrors
// go/analysis closely enough that, should x/tools become available,
// the analyzers port mechanically.
//
// The analyzers (DESIGN.md §12 states each invariant and its origin):
//
//   - errwrap: sentinel errors (package-level Err* variables, io.EOF)
//     must flow through errors.Is/As and be wrapped with %w — never
//     compared with ==/!=, switched on, type-asserted, or stringified
//     into a fresh error by a %v/%s fmt.Errorf.
//   - ctxflow: a function that receives a context.Context must thread
//     it (possibly derived) to every callee that accepts one, never
//     context.Background()/TODO() — preserving the PR 6 request-ID
//     chain HTTP → batcher → engine → ranks.
//   - goroutinelife: every `go` statement in internal/{core,mpi,serve}
//     must have a visible lifecycle: a WaitGroup Add in the spawning
//     function, or a `defer wg.Done()` / `defer close(done)` in the
//     spawned body (directly or in a same-package callee).
//   - detpath: the deterministic frame-producing packages
//     (tensor, nn, autodiff, mpi) must not read the wall clock
//     (time.Now/Since), use the global math/rand RNG, or range over a
//     map — the three classic sources of run-to-run divergence.
//   - closecheck: file handles opened for writing (os.Create,
//     os.CreateTemp, os.OpenFile) must have their Close error checked;
//     a full disk must never truncate silently (the PR 5 bug class).
//
// Escape hatch. A source line (or the line below a comment-only line)
// is exempted with
//
//	//repolint:allow <name>[,<name>...] -- <reason>
//
// The reason is mandatory by policy (§12): an escape documents WHY the
// invariant legitimately does not apply (a timeout needs the wall
// clock; an error-path Close is best-effort cleanup), and review
// rejects escapes without one.
//
// cmd/repolint compiles the suite into a multichecker usable
// standalone (`go run ./cmd/repolint ./...`, exit 1 on findings) and
// as a vet tool (`go vet -vettool=$(which repolint) ./...`). The
// clean-tree invariant — the suite reports nothing on this repository
// — is enforced by TestRepoTreeIsClean in this package, so it is part
// of tier-1, not just CI.
package analysis
