package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// Srcs maps absolute file names to their source bytes (needed by
	// the allow-directive own-line test).
	Srcs       map[string][]byte
	Types      *types.Package
	Info       *types.Info
	FuncBodies map[*types.Func]*ast.FuncDecl
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` on the patterns from dir
// and returns every listed package.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts an importpath→exportfile map to the gc
// importer's lookup signature.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, typically the module root with pattern "./..."), type-checks
// each against build-cache export data, and returns them ready for
// RunPackage. Only non-test Go files are loaded: the suite governs
// shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixtureDir loads the single package rooted at dir (a testdata
// fixture, invisible to `go list ./...`): it parses every .go file,
// resolves the fixture's stdlib imports to export data, and
// type-checks. Fixture packages may import the standard library only.
func LoadFixtureDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s: no .go files", dir)
	}

	// A throwaway parse collects the imports so one `go list` resolves
	// their export data (compiling them into the build cache on first
	// use).
	impSet := map[string]bool{}
	scanFset := token.NewFileSet()
	for _, f := range files {
		af, err := parser.ParseFile(scanFset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
		}
		for _, im := range af.Imports {
			p, _ := strconv.Unquote(im.Path.Value)
			if p != "" && p != "unsafe" {
				impSet[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(impSet) > 0 {
		patterns := make([]string, 0, len(impSet))
		for p := range impSet {
			patterns = append(patterns, p)
		}
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	return typecheck(fset, imp, "fixture/"+filepath.Base(dir), dir, files)
}

// typecheck parses files and runs go/types over them with full use,
// type, and selection information recorded.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Srcs:       make(map[string][]byte, len(files)),
		FuncBodies: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Srcs[name] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pkg.FuncBodies[obj] = fd
				}
			}
		}
	}
	return pkg, nil
}

// ModuleRoot locates the enclosing module's root directory starting
// from dir (the directory holding go.mod), so tests running in a
// package directory can analyze the whole tree.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysis: no enclosing module at %s", dir)
	}
	return filepath.Dir(gomod), nil
}
