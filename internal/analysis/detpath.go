package analysis

import (
	"go/ast"
	"go/types"
)

// DetPath guards the bit-reproducibility contract (DESIGN.md §8, §11):
// the frame-producing packages — tensor, nn, autodiff, and the mpi
// send paths — must be pure functions of their inputs, so rollouts are
// bit-identical across transports, exchange modes, and reruns. The
// admission package rides along for a different reason: its
// token-bucket and Retry-After arithmetic must be a pure function of
// an injected clock (Config.Now) so refill behaviour is
// deterministically testable — a stray time.Now() there is a bug the
// same way it is in a frame producer. Three classic divergence
// sources are banned outright:
//
//   - wall-clock reads (time.Now, time.Since): anything derived from
//     them differs between ranks and between runs;
//   - the global math/rand RNG: shared mutable state seeded from the
//     clock — all randomness must flow from an explicit seeded
//     rand.New(rand.NewSource(seed));
//   - ranging over a map: Go randomizes iteration order per run, so
//     any value assembled by map iteration differs run to run.
//
// Legitimate wall-clock sites — timeouts, deadlines, latency
// histograms — carry a `//repolint:allow detpath -- <reason>` escape;
// they measure time but never let it into a frame.
var DetPath = &Analyzer{
	Name:  "detpath",
	Doc:   "no wall-clock, global RNG, or map-iteration nondeterminism in the frame-producing packages",
	Match: matchPackages("internal/tensor", "internal/nn", "internal/autodiff", "internal/mpi", "internal/admission"),
	Run:   runDetPath,
}

// globalRandFuncs are the math/rand package-level functions that read
// the shared global RNG. Constructors (New, NewSource) build explicit
// seeded generators and stay legal.
func isGlobalRandCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	switch f.Name() {
	case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
		return false
	}
	return true
}

func runDetPath(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch {
				case isPkgCall(pass.Info, n, "time", "Now"):
					pass.Reportf(n.Pos(), "wall-clock read in a deterministic package; frames must not depend on time.Now")
				case isPkgCall(pass.Info, n, "time", "Since"):
					pass.Reportf(n.Pos(), "wall-clock read in a deterministic package; frames must not depend on time.Since")
				case isGlobalRandCall(pass.Info, n):
					pass.Reportf(n.Pos(), "global math/rand RNG in a deterministic package; use an explicit rand.New(rand.NewSource(seed))")
				}
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in a deterministic package; order is randomized per run — iterate a sorted key slice")
				}
			}
			return true
		})
	}
}
