package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// wantRe extracts `// want `regex“ (or "regex") expectations from
// fixture comments, analysistest-style. One comment may carry several.
var wantRe = regexp.MustCompile("want\\s+((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one want: a diagnostic on file:line whose message
// matches re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants collects every expectation declared in the package's
// fixture comments.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzer with Match
// bypassed (the filter scopes the real tree, not the semantics), and
// diffs findings against the want expectations.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pkg, err := LoadFixtureDir(filepath.Join("testdata", "src", a.Name))
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no wants; a fixture must have at least one positive case", a.Name)
	}
	unscoped := &Analyzer{Name: a.Name, Doc: a.Doc, Run: a.Run}
	diags := RunPackage(pkg, []*Analyzer{unscoped})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// TestFixtures runs every analyzer against its positive/negative
// fixture package under testdata/src.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a) })
	}
}

// TestRepoTreeIsClean runs the full suite over the real tree and
// demands zero findings. This makes the clean-tree invariant tier-1:
// a violation anywhere in the repo fails `go test ./...`, not just
// the lint job.
func TestRepoTreeIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, RunPackage(pkg, All())...)
	}
	for _, d := range all {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Logf("fix the findings or add a //repolint:allow <name> -- <reason> directive")
	}
}

// TestParseAllow pins the directive grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//repolint:allow detpath -- timeout bookkeeping", []string{"detpath"}, true},
		{"//repolint:allow errwrap,detpath -- two at once", []string{"errwrap", "detpath"}, true},
		{"//repolint:allow errwrap detpath", []string{"errwrap", "detpath"}, true},
		{"//repolint:allow", nil, false},
		{"//repolint:allowx detpath", nil, false},
		{"// repolint:allow detpath", nil, false},
	}
	for _, c := range cases {
		names, ok := parseAllow(c.text)
		if ok != c.ok || fmt.Sprint(names) != fmt.Sprint(c.names) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}
