package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck targets the PR 5 fsync/Close bug class: on most
// filesystems a write error (ENOSPC included) can surface only at
// Close, so a file handle opened for writing whose Close error is
// discarded can silently truncate — the artifact looks written, the
// digest later disagrees. Within a function, any handle acquired from
// os.Create, os.CreateTemp, or os.OpenFile must have its Close error
// checked; `defer f.Close()` and a bare `f.Close()` statement both
// discard it. Read-only handles (os.Open) are exempt — their Close
// error carries no durability information — as are error-path
// best-effort closes annotated `//repolint:allow closecheck`.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "Close errors of write-mode file handles (os.Create/CreateTemp/OpenFile) are checked",
	Run:  runCloseCheck,
}

// isWriteOpen reports whether call acquires a write-capable *os.File.
func isWriteOpen(info *types.Info, call *ast.CallExpr) bool {
	return isPkgCall(info, call, "os", "Create") ||
		isPkgCall(info, call, "os", "CreateTemp") ||
		isPkgCall(info, call, "os", "OpenFile")
}

func runCloseCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCloses(pass, fd.Body)
		}
	}
}

// checkFuncCloses flags discarded Close calls on write-handle
// variables within one function body (closures included: the handle
// objects are resolved through go/types, so a deferred closure closing
// an outer handle is still seen).
func checkFuncCloses(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: variables assigned from a write-mode open.
	handles := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isWriteOpen(pass.Info, call) {
				continue
			}
			// os.Create/CreateTemp/OpenFile all return (f, err): with a
			// single multi-value RHS the handle is Lhs[0].
			if id, ok := as.Lhs[lhsIndex(i, len(as.Rhs))].(*ast.Ident); ok {
				if obj := identObj(pass.Info, id); obj != nil {
					handles[obj] = true
				}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}
	// Pass 2: Close calls on those variables whose error result is
	// discarded (expression statement or defer).
	report := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !handles[identObj(pass.Info, id)] {
			return
		}
		how := "discarded"
		if deferred {
			how = "discarded by defer"
		}
		pass.Reportf(call.Pos(), "Close error of write-mode handle %s %s; a full disk can truncate silently — check it (sync, then close, then rename)", id.Name, how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				report(call, false)
			}
		case *ast.DeferStmt:
			report(n.Call, true)
		}
		return true
	})
}

// identObj resolves an identifier to its object, following both uses
// and defining occurrences (`f, err := os.Create(...)` defines f).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// lhsIndex selects the LHS index for RHS entry i: with a single
// multi-value call on the right, the handle is always Lhs[0].
func lhsIndex(i, nrhs int) int {
	if nrhs == 1 {
		return 0
	}
	return i
}
