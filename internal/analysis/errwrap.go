package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ErrWrap enforces the sentinel-error discipline from PR 4/5: the
// named Err* sentinels in core, mpi, model, and serve (and stdlib
// sentinels like io.EOF) are matched with errors.Is/As — never with
// ==/!=, a switch, or a type assertion — and an error passed through
// fmt.Errorf keeps its chain via %w instead of being flattened to text
// by %v/%s. Bare `return ErrX` is allowed (identity is preserved; the
// public entrypoints add context when they wrap).
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors flow through errors.Is/As and fmt.Errorf %w, never ==, switch, or type assertion",
	Run:  runErrWrap,
}

// isSentinel reports whether e denotes a package-level error variable
// following the sentinel naming convention (ErrFoo, or the historic
// io.EOF).
func isSentinel(info *types.Info, e ast.Expr) bool {
	v, ok := objectOf(info, e).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !implementsError(v.Type()) {
		return false
	}
	return v.Name() == "EOF" || sentinelName.MatchString(v.Name())
}

var sentinelName = regexp.MustCompile(`^Err[A-Z0-9]`)

// wrapVerb matches a %w verb (with optional flags) in a format string.
var wrapVerb = regexp.MustCompile(`%[#+\-0-9. ]*w`)

func runErrWrap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if isSentinel(pass.Info, side) {
						pass.Reportf(n.Pos(), "sentinel compared with %s; use errors.Is so wrapped chains match", n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isSentinel(pass.Info, e) {
							pass.Reportf(e.Pos(), "sentinel matched by switch case; use errors.Is so wrapped chains match")
						}
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type == nil { // the x.(type) of a type switch; handled below
					return true
				}
				if tv, ok := pass.Info.Types[n.X]; ok && isErrorType(tv.Type) {
					pass.Reportf(n.Pos(), "type assertion on an error; use errors.As so wrapped chains match")
				}
			case *ast.TypeSwitchStmt:
				var x ast.Expr
				switch s := n.Assign.(type) {
				case *ast.ExprStmt:
					x = s.X.(*ast.TypeAssertExpr).X
				case *ast.AssignStmt:
					x = s.Rhs[0].(*ast.TypeAssertExpr).X
				}
				if tv, ok := pass.Info.Types[x]; ok && isErrorType(tv.Type) {
					pass.Reportf(n.Pos(), "type switch on an error; use errors.As so wrapped chains match")
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that receive an error value
// but whose format has no %w verb: the new error silently severs the
// chain, so errors.Is/As at the call boundary stops working.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgCall(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if wrapVerb.MatchString(strings.ReplaceAll(format, "%%", "")) {
		return
	}
	for _, arg := range call.Args[1:] {
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if implementsError(atv.Type) {
			pass.Reportf(call.Pos(), "error argument formatted without %%w; the chain is lost to errors.Is/As")
			return
		}
	}
}
