package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, mirroring the
// golang.org/x/tools/go/analysis shape (see doc.go for why it is
// reimplemented here).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives.
	Name string
	// Doc is the one-line invariant statement shown by `repolint help`.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil means every package. Fixture runs bypass Match — the
	// filter scopes the real tree, not the semantics.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// FuncBodies maps same-package function and method objects to
	// their declarations, for the cross-function checks (goroutinelife
	// follows `go m.loop()` into loop's body).
	FuncBodies map[*types.Func]*ast.FuncDecl

	diags *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{ErrWrap, CtxFlow, GoroutineLife, DetPath, CloseCheck}
}

// matchPackages builds a Match that accepts exactly the given import
// path suffixes of this module (e.g. "internal/mpi").
func matchPackages(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}

// RunPackage applies every applicable analyzer to one loaded package
// and returns the findings that survive //repolint:allow filtering,
// sorted by position. Test files never produce findings: the suite
// governs shipped code, and fixtures exercise the analyzers directly.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			FuncBodies: pkg.FuncBodies,
			diags:      &diags,
		}
		a.Run(pass)
	}
	diags = filterAllowed(pkg, diags)
	kept := diags[:0]
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Pos.Column < kept[j].Pos.Column
	})
	return kept
}

// allowPrefix introduces an escape directive comment.
const allowPrefix = "//repolint:allow"

// filterAllowed drops diagnostics on lines covered by a
// //repolint:allow directive naming their analyzer. A directive covers
// its own line (trailing comment) and, when nothing but whitespace
// precedes it on the line, the next line (comment-above form).
func filterAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	allowed := make(map[key]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				grant := func(line int) {
					k := key{pos.Filename, line}
					if allowed[k] == nil {
						allowed[k] = make(map[string]bool)
					}
					for _, n := range names {
						allowed[k][n] = true
					}
				}
				grant(pos.Line)
				if ownLine(pkg.Srcs[pos.Filename], pos.Offset) {
					grant(pos.Line + 1)
				}
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseAllow extracts the analyzer names from an allow directive:
//
//	//repolint:allow name1,name2 -- reason
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, f := range strings.Fields(rest) {
		for _, n := range strings.Split(f, ",") {
			if n != "" {
				names = append(names, n)
			}
		}
	}
	return names, len(names) > 0
}

// ownLine reports whether only whitespace precedes offset on its line.
func ownLine(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	i := bytes.LastIndexByte(src[:offset], '\n') + 1
	return len(bytes.TrimSpace(src[i:offset])) == 0
}

// ---- shared type-inspection helpers ----

// errorType is the universe error type; errorIface its interface.
var (
	errorType  = types.Universe.Lookup("error").Type()
	errorIface = errorType.Underlying().(*types.Interface)
)

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return types.Implements(t, errorIface)
}

// objectOf resolves an identifier or selector expression to its object.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// calleeFunc resolves a call's callee to a *types.Func (static calls
// only: package functions, methods; nil for function values and
// builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if f, ok := objectOf(info, call.Fun).(*types.Func); ok {
		return f
	}
	return nil
}

// isPkgCall reports whether call is a static call to pkgPath.name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// isNamed reports whether t (after pointer unwrapping) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
