package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow preserves the PR 6 request-ID chain: a function that
// receives a context.Context carries the request identity (and
// cancellation), so calling context.Background() or context.TODO()
// inside it severs the chain — the callee would compute under an
// anonymous context and its errors would lose their "request=<id>"
// attribution. Derived contexts (context.WithTimeout(ctx, ...), a
// different ctx variable) are fine; minting a fresh root is not.
// Functions without a ctx parameter are legitimate roots and are not
// checked.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "a function receiving a context.Context never replaces it with context.Background/TODO",
	Run:  runCtxFlow,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		// Walk with an explicit function stack (ast.Inspect signals
		// subtree exit with a nil node): a ctx-less closure inside a
		// ctx-receiving function stays governed — it closes over ctx —
		// while a top-level function without a ctx parameter is a
		// legitimate context root.
		var nodes []ast.Node
		var governed []bool
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				switch top.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					governed = governed[:len(governed)-1]
				}
				return true
			}
			nodes = append(nodes, n)
			switch n := n.(type) {
			case *ast.FuncDecl:
				governed = append(governed, hasCtxParam(pass.Info, n.Type))
			case *ast.FuncLit:
				inherited := len(governed) > 0 && governed[len(governed)-1]
				governed = append(governed, inherited || hasCtxParam(pass.Info, n.Type))
			case *ast.CallExpr:
				if len(governed) == 0 || !governed[len(governed)-1] {
					return true
				}
				if isPkgCall(pass.Info, n, "context", "Background") || isPkgCall(pass.Info, n, "context", "TODO") {
					pass.Reportf(n.Pos(), "context.%s inside a function that receives a context; thread (or derive from) the caller's ctx", calleeFunc(pass.Info, n).Name())
				}
			}
			return true
		})
	}
}
