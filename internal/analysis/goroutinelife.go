package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife enforces the goroutine-lifecycle discipline the PR 3
// request-leak audit checked by hand: every `go` statement in the
// runtime packages (core, mpi, serve, router, admission) must be tied
// to a visible drain/Close lifecycle, so Close can always reap what
// Run spawned.
// A spawn is accepted when any of these holds:
//
//   - the spawning function calls WaitGroup.Add before the `go`
//     statement (the Add/Done/Wait pattern);
//   - the spawned function literal defers a WaitGroup.Done or a
//     close(ch) (completion is observable);
//   - the spawned callee is a same-package function whose body defers
//     one of those (e.g. `go b.dispatch()` where dispatch defers
//     close(b.done)).
//
// Anything else is a fire-and-forget goroutine: nothing can wait for
// it, so Close returns while it still runs — the leak class
// TestAbandonedRequestsNoLeak hunts dynamically.
var GoroutineLife = &Analyzer{
	Name:  "goroutinelife",
	Doc:   "go statements in the runtime packages are tied to a WaitGroup or close(done) lifecycle",
	Match: matchPackages("internal/core", "internal/mpi", "internal/serve", "internal/router", "internal/admission"),
	Run:   runGoroutineLife,
}

func runGoroutineLife(pass *Pass) {
	for _, f := range pass.Files {
		// Track the enclosing function bodies so rule 1 can scan the
		// spawning scope for a preceding WaitGroup.Add.
		var nodes []ast.Node
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				switch top.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					funcs = funcs[:len(funcs)-1]
				}
				return true
			}
			nodes = append(nodes, n)
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			case *ast.GoStmt:
				if goHasLifecycle(pass, n, funcs) {
					return true
				}
				pass.Reportf(n.Pos(), "fire-and-forget goroutine: tie it to a WaitGroup.Add/Done or a close(done) so Close can reap it")
			}
			return true
		})
	}
}

// goHasLifecycle applies the three acceptance rules.
func goHasLifecycle(pass *Pass, g *ast.GoStmt, funcs []ast.Node) bool {
	// Rule 1: a WaitGroup.Add textually before the spawn in any
	// enclosing function.
	for _, fn := range funcs {
		var body *ast.BlockStmt
		switch fn := fn.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil && hasAddBefore(pass, body, g.Pos()) {
			return true
		}
	}
	// Rule 2: the spawned literal's body defers Done/close.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return bodyDefersLifecycle(pass, lit.Body)
	}
	// Rule 3: the spawned callee is a same-package function whose body
	// defers Done/close.
	if callee := calleeFunc(pass.Info, g.Call); callee != nil {
		if decl, ok := pass.FuncBodies[callee]; ok && decl.Body != nil {
			return bodyDefersLifecycle(pass, decl.Body)
		}
	}
	return false
}

// hasAddBefore reports whether body contains a sync.WaitGroup.Add call
// positioned before pos.
func hasAddBefore(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || found {
			return !found
		}
		if f := calleeFunc(pass.Info, call); f != nil &&
			f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == "Add" {
			found = true
		}
		return !found
	})
	return found
}

// bodyDefersLifecycle reports whether body defers a WaitGroup.Done or
// a close(...), directly or inside a one-level deferred closure.
func bodyDefersLifecycle(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isLifecycleCall(pass, d.Call) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isLifecycleCall(pass, call) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isLifecycleCall reports whether call is close(...) or a
// sync.WaitGroup Done.
func isLifecycleCall(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	f := calleeFunc(pass.Info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == "Done"
}
