// Package fixture exercises the goroutinelife analyzer: every go
// statement needs a visible WaitGroup or close(done) lifecycle.
package fixture

import "sync"

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (s *server) loop() {
	defer close(s.done)
}

func (s *server) compute() {}

func (s *server) startTracked() {
	s.wg.Add(1)
	go func() { // negative: Add precedes the spawn
		defer s.wg.Done()
		s.compute()
	}()
}

func (s *server) startLoop() {
	go s.loop() // negative: the callee defers close(s.done)
}

func (s *server) startDeferredDone() {
	go func() { // negative: the body defers a WaitGroup.Done
		defer s.wg.Done()
	}()
}

func (s *server) startClosureDone() {
	go func() { // negative: the deferred closure calls Done
		defer func() {
			s.compute()
			s.wg.Done()
		}()
	}()
}

func (s *server) fireAndForget() {
	go func() { // want `fire-and-forget goroutine`
		s.compute()
	}()
}

func (s *server) fireNamed() {
	go s.compute() // want `fire-and-forget goroutine`
}

func (s *server) escaped() {
	//repolint:allow goroutinelife -- demo: lifecycle managed by the process exit
	go s.compute()
}
