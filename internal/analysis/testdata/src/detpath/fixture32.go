// fixture32.go exercises detpath against the idioms the float32
// compute path introduced: length-only SIMD dispatch, a mutex-guarded
// pack cache with a generation counter, and arena scratch reuse. All
// of these must stay legal — and the tempting shortcuts next to them
// (seeding scratch from the global RNG, invalidating caches by map
// iteration, timing a kernel inline) must stay banned.
package fixture

import (
	"math/rand"
	"sync"
	"time"
)

// kernelDispatch32 mirrors the axpy4f32 cascade: the SIMD/scalar split
// is a pure function of the span length, which is exactly what the
// determinism contract wants.
func kernelDispatch32(c, b []float32, a float32) {
	i := 0
	if len(c) >= 32 { // negative: branch on length only
		i = len(c) &^ 31
	}
	if len(c)-i >= 16 {
		i += (len(c) - i) &^ 15
	}
	for ; i < len(c); i++ {
		c[i] += a * b[i]
	}
}

// packCache32 mirrors the prepacked-weight cache: a mutex and a
// generation counter, no clock, no map.
type packCache32 struct {
	mu  sync.Mutex
	gen uint64
	wd  []float32
}

func (p *packCache32) get(src []float64, gen uint64) []float32 { // negative: deterministic cache
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen || p.wd == nil {
		p.wd = make([]float32, len(src))
		for i, v := range src {
			p.wd[i] = float32(v)
		}
		p.gen = gen
	}
	return p.wd
}

// invalidateByName is the tempting shortcut next to the cache: walking
// a registry map to invalidate packs orders the walk randomly per run.
func invalidateByName(packs map[string]*packCache32) {
	for _, p := range packs { // want `map iteration`
		p.wd = nil
	}
}

// noisyScratch32 seeds an arena plane from the global RNG — the f32
// twin of the classic divergence source.
func noisyScratch32(plane []float32) {
	for i := range plane {
		plane[i] = rand.Float32() // want `global math/rand RNG`
	}
}

// timedKernel32 times a kernel inline with the wall clock.
func timedKernel32(c, b []float32, a float32) time.Duration {
	t0 := time.Now() // want `wall-clock read`
	kernelDispatch32(c, b, a)
	return time.Since(t0) // want `wall-clock read`
}
