// Package fixture exercises the detpath analyzer: no wall clock,
// global RNG, or map iteration in deterministic packages.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock read`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read`
}

func globalRand() float64 {
	return rand.Float64() // want `global math/rand RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand RNG`
}

func seeded(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64() // negative: explicit seeded RNG
}

func mapIter(m map[string]int) int {
	s := 0
	for _, v := range m { // want `map iteration`
		s += v
	}
	return s
}

func sortedIter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `map iteration`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceIter(xs []int) int {
	s := 0
	for _, v := range xs { // negative: slices iterate in order
		s += v
	}
	return s
}

func escapedDeadline() time.Time {
	//repolint:allow detpath -- timeout bookkeeping, never frame content
	return time.Now()
}
