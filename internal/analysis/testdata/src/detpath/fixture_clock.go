// fixture_clock.go exercises detpath against the injected-clock idiom
// the admission package uses: holding a `func() time.Time` field whose
// default VALUE is time.Now is legal (no CallExpr), calling the field
// is legal, but calling time.Now directly is not. This is the line the
// analyzer draws so token-bucket refill stays a pure function of the
// injected timestamps.
package fixture

import "time"

type gate struct {
	now func() time.Time
}

func newGate(now func() time.Time) *gate {
	if now == nil {
		now = time.Now // negative: a value reference, not a clock read
	}
	return &gate{now: now}
}

func (g *gate) refill(last time.Time, rate float64) float64 {
	return g.now().Sub(last).Seconds() * rate // negative: the injected clock
}

func (g *gate) refillWrong(last time.Time, rate float64) float64 {
	return time.Now().Sub(last).Seconds() * rate // want `wall-clock read`
}

func (g *gate) idleWrong(last time.Time) bool {
	return time.Since(last) > 5*time.Minute // want `wall-clock read`
}

func bucketSweep(entries []string, m map[string]int) int {
	n := 0
	for _, k := range entries { // negative: the slice mirror, not the map
		n += m[k]
	}
	return n
}

func bucketSweepWrong(m map[string]int) int {
	n := 0
	for _, v := range m { // want `map iteration`
		n += v
	}
	return n
}
