// Package fixture exercises the closecheck analyzer: write-mode file
// handles must have their Close error checked.
package fixture

import "os"

func writeDeferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error of write-mode handle f discarded by defer`
	_, err = f.Write(data)
	return err
}

func writeBare(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return
	}
	f.Close() // want `Close error of write-mode handle f discarded`
}

func writeTemp(dir string) error {
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error of write-mode handle f discarded by defer`
	return nil
}

func writeChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//repolint:allow closecheck -- error path: the write error is already being returned
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//repolint:allow closecheck -- error path: the sync error is already being returned
		f.Close()
		return err
	}
	return f.Close() // negative: the error is returned
}

func writeAssigned(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = f.Close() // negative: the error is captured
	return err
}

func readOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // negative: read-only handle, no durability at stake
	return nil
}
