// Package fixture exercises the ctxflow analyzer: a function receiving
// a context.Context must never replace it with a fresh root.
package fixture

import (
	"context"
	"time"
)

func callee(ctx context.Context) error { return ctx.Err() }

func governed(ctx context.Context) {
	_ = callee(context.Background()) // want `context.Background inside a function that receives a context`
	_ = callee(context.TODO())       // want `context.TODO inside a function that receives a context`
	_ = callee(ctx)                  // negative: the caller's ctx
	derived, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = callee(derived) // negative: derived from the caller's ctx
}

func governedClosure(ctx context.Context) {
	run := func() {
		// The closure closes over ctx, so it is still governed.
		_ = callee(context.Background()) // want `context.Background inside a function that receives a context`
	}
	run()
}

func root() {
	// negative: no ctx parameter — a legitimate context root.
	_ = callee(context.Background())
}

func escaped(ctx context.Context) {
	//repolint:allow ctxflow -- intentionally detached: survives the request by design
	_ = callee(context.Background())
}
