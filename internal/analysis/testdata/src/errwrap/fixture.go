// Package fixture exercises the errwrap analyzer: sentinel errors must
// flow through errors.Is/As and %w, never ==, switch, or assertion.
package fixture

import (
	"errors"
	"fmt"
	"io"
)

// ErrBad is a sentinel by the Err* naming convention.
var ErrBad = errors.New("bad")

func compare(err error) bool {
	if err == ErrBad { // want `sentinel compared with ==`
		return true
	}
	if err != ErrBad { // want `sentinel compared with !=`
		return false
	}
	if errors.Is(err, ErrBad) { // negative: the required form
		return true
	}
	return err == io.EOF // want `sentinel compared with ==`
}

func compareNil(err error) bool {
	return err == nil // negative: nil checks are not sentinel matches
}

func switchOn(err error) int {
	switch err {
	case ErrBad: // want `sentinel matched by switch case`
		return 1
	case nil:
		return 0
	}
	return 2
}

type opError struct{ msg string }

func (e *opError) Error() string { return e.msg }

func assert(err error) bool {
	if _, ok := err.(*opError); ok { // want `type assertion on an error`
		return true
	}
	var oe *opError
	if errors.As(err, &oe) { // negative: the required form
		return true
	}
	switch err.(type) { // want `type switch on an error`
	case *opError:
		return true
	}
	return false
}

func assertNonError(v any) bool {
	_, ok := v.(*opError) // negative: v is not statically an error
	return ok
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("op failed: %v", err) // want `error argument formatted without %w`
	}
	return fmt.Errorf("op failed: %w", err) // negative: chain preserved
}

func wrapString(name string) error {
	return fmt.Errorf("op %q failed", name) // negative: no error argument
}

func escaped(err error) bool {
	//repolint:allow errwrap -- documenting the escape hatch
	return err == ErrBad
}
