package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// This file implements the (unpublished) vet command-line protocol —
// the same contract golang.org/x/tools/go/analysis/unitchecker
// implements — so cmd/repolint can run as `go vet -vettool=repolint`.
// The go command drives the tool in three ways:
//
//	repolint -V=full     print a version line ending in buildID=<hash>
//	repolint -flags      print the tool's flags as JSON (we have none)
//	repolint <file>.cfg  analyze one package described by the config
//
// The .cfg file is JSON (see cmd/go/internal/work.vetConfig): the
// package's files, its import map, and the export-data file of every
// dependency. Facts are not used by this suite, so the vetx output is
// written empty. Diagnostics go to stderr in file:line:col form and
// the process exits 2, which go vet reports per package.

// vetConfig mirrors the fields of cmd/go's vet config this driver
// consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetToolMain handles the vet protocol entrypoints if args match one;
// it returns false when args are not a vet-protocol invocation (and
// the caller should run in standalone mode). On protocol invocations
// it exits the process itself.
func VetToolMain(args []string, analyzers []*Analyzer) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case args[0] == "-flags":
		// No tool-specific flags; go vet requires valid JSON here.
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runVetCfg(args[0], analyzers))
	}
	return false
}

// printVersion emits the -V=full line cmd/go's toolID parser expects:
// "name version devel ... buildID=<content hash>", so the analysis
// cache is keyed by the tool binary's content and invalidates when the
// analyzers change.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			// Best-effort hash of our own binary; a read error only
			// weakens cache keying.
			//repolint:allow closecheck -- read-only handle, hash already computed
			f.Close()
		}
	}
	fmt.Printf("repolint version devel buildID=%x\n", h.Sum(nil))
}

// runVetCfg analyzes the single package described by cfgPath.
func runVetCfg(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet expects the facts file to exist after the run even though
	// this suite records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: writing vetx output: %v\n", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("repolint: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	importPath, _, _ := strings.Cut(cfg.ImportPath, " [")
	pkg, err := typecheck(fset, imp, importPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	// Match against the canonical non-test import path so the test
	// variant of internal/mpi is governed like internal/mpi itself.
	pkg.ImportPath = strings.TrimSuffix(importPath, "_test")
	diags := RunPackage(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
