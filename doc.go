// Package repro is a from-scratch Go reproduction of "Parallel Machine
// Learning of Partial Differential Equations" (Totounferoush, Ebrahimi
// Pour, Roller, Mehl — PDSEC/IPDPS 2021, arXiv:2103.01869).
//
// The paper's contribution — communication-free parallel training of
// per-subdomain CNN surrogates for PDE solvers, with point-to-point
// halo exchange at inference time — lives in internal/core, behind a
// session-oriented serving API (DESIGN.md §7): core.Trainer is the
// single cancellable training entrypoint (paper scheme, sequential
// reference, and the data-parallel baseline as options, with progress
// callbacks), and core.Engine wraps a trained ensemble for concurrent
// serving. Any number of streaming rollout Sessions and one-shot
// Predict calls run at once over weight-sharing model clones
// (nn.Sequential.CloneShared), each cancellable mid-flight and O(1) in
// memory regardless of rollout depth. Validation failures carry the
// named errors core.ErrBadWindow / core.ErrShapeMismatch for
// errors.Is branching.
//
// Serving is micro-batched end to end (DESIGN.md §9). The batch axis
// is first-class through the whole compute stack — every nn layer
// maps [N, ...] inputs such that image i's output is bit-identical to
// a batch-of-1 call, with the convolution layers sweeping one tall
// im2col+GEMM task space per batch — and core.Engine.PredictBatch
// evaluates a micro-batch of requests in one pass over the rank
// models (cache-sized image chunks, one pooled clone set).
// core.Batcher (options core.WithMaxBatch, core.WithMaxDelay)
// transparently coalesces concurrent Predict callers into such
// micro-batches, racing the batch-size trigger against the delay
// trigger while preserving per-request cancellation and error
// isolation. cmd/serve exposes the whole surface over HTTP —
// POST /v1/predict (JSON or gob tensors, coalesced behind the
// batcher) and GET|POST /v1/rollout (chunked streaming of session
// frames) — with graceful drain on SIGTERM; internal/serve holds the
// handler plus the typed Client, and scripts/loadtest.sh drives it.
// See the package examples (Example_enginePredict, Example_batcher,
// Example_httpClient) for runnable end-to-end snippets.
//
// The message-passing runtime is transport-agnostic (DESIGN.md §8):
// the same World/Comm semantics (non-overtaking tagged p2p,
// collectives, Cartesian topology, CommStats + virtual network-cost
// accounting) run over in-process channels (mpi.NewWorld) or over
// length-prefixed TCP framing between independently launched
// processes (mpi.DialTCP; cmd/mpirun is the local rank launcher), so
// ranks can genuinely live in separate OS processes — cmd/train and
// cmd/infer take -transport tcp. Halo-exchange inference runs either
// blocking or as an overlapped pipeline (core.WithExchangeMode):
// non-blocking Isend/Irecv of the halo strips with the interior
// convolution tiles (nn.HaloSplit) computed while boundaries are in
// flight. Rollout frames are bit-identical across
// {mem, tcp} x {blocking, overlap}. Every substrate the scheme needs
// is implemented in this module:
//
//   - internal/tensor — dense float64 N-d tensors and the GEMM +
//     im2col convolution engine (blocked panel kernels with AVX2/
//     AVX-512 FMA assembly on amd64 and a portable fallback)
//   - internal/nn     — CNN layers with hand-derived backprop and a
//     native batch axis (batched outputs bit-identical per image), a
//     fast-path/slow-path engine switch (DESIGN.md §3, pinnable
//     per-network for serving), reusable scratch arenas,
//     weight-sharing clones for concurrent inference, and the
//     interior/boundary halo tile split behind the overlapped
//     exchange (DESIGN.md §8)
//   - internal/serve  — HTTP serving front end (predict + streaming
//     rollout handlers, typed client) over Engine/Batcher (§9)
//   - internal/opt    — SGD / momentum / RMSProp / ADAM (paper Eq. 3–6)
//   - internal/loss   — MSE / MAE / MAPE (paper Eq. 7) / SMAPE / Huber
//   - internal/mpi    — message-passing runtime with MPI semantics
//     (p2p, collectives, Cartesian topology, network model) over
//     pluggable transports: in-process channels or TCP sockets
//     (DESIGN.md §8)
//   - internal/grid, internal/euler — the linearized Euler solver
//     standing in for Ateles (paper Eq. 8, §IV-A)
//   - internal/decomp — the Fig. 2 domain decomposition
//   - internal/dataset, internal/model, internal/stats — data pipeline,
//     Table-I network builder, evaluation metrics
//   - internal/autodiff — scalar reverse-mode AD, the oracle that
//     cross-validates every hand-written backward pass
//   - internal/viz — ASCII/PGM/PPM field rendering
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation plus the serving exhibits
// (BenchmarkBatcherThroughput, BenchmarkSessionConcurrentRollout);
// see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
