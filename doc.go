// Package repro is a from-scratch Go reproduction of "Parallel Machine
// Learning of Partial Differential Equations" (Totounferoush, Ebrahimi
// Pour, Roller, Mehl — PDSEC/IPDPS 2021, arXiv:2103.01869).
//
// The paper's contribution — communication-free parallel training of
// per-subdomain CNN surrogates for PDE solvers, with point-to-point
// halo exchange at inference time — lives in internal/core, behind a
// session-oriented serving API (DESIGN.md §7): core.Trainer is the
// single cancellable training entrypoint (paper scheme, sequential
// reference, and the data-parallel baseline as options, with progress
// callbacks), and core.Engine wraps a trained ensemble for concurrent
// serving. Any number of streaming rollout Sessions and one-shot
// Predict calls run at once over weight-sharing model clones
// (nn.Sequential.CloneShared), each cancellable mid-flight and O(1) in
// memory regardless of rollout depth. Validation failures carry the
// named errors core.ErrBadWindow / core.ErrShapeMismatch for
// errors.Is branching.
//
// Serving is micro-batched end to end (DESIGN.md §9). The batch axis
// is first-class through the whole compute stack — every nn layer
// maps [N, ...] inputs such that image i's output is bit-identical to
// a batch-of-1 call, with the convolution layers sweeping one tall
// im2col+GEMM task space per batch — and core.Engine.PredictBatch
// evaluates a micro-batch of requests in one pass over the rank
// models (cache-sized image chunks, one pooled clone set).
// core.Batcher (options core.WithMaxBatch, core.WithMaxDelay)
// transparently coalesces concurrent Predict callers into such
// micro-batches, racing the batch-size trigger against the delay
// trigger while preserving per-request cancellation and error
// isolation.
//
// Trained models ship as versioned artifacts and serve through a
// registry (DESIGN.md §10). An artifact is one directory per model
// version: manifest.json (format version, model name/version,
// partition + window + architecture metadata, per-rank SHA-256
// digests) plus the per-rank weight payloads, written atomically —
// temp dir + rename, fsync'd payloads with checked Close — so a
// crash or full disk never leaves a half-written model
// (model.WriteArtifact, core.SaveModel; core.OpenModel digest-checks
// every payload before deserializing weights, still reads legacy
// bare rank<N>.gob directories, and model.Migrate / `inspect -ckpt
// dir -migrate` upgrades them in place). core.Registry maps model
// name → refcounted engine Handle with Load/Get/Swap/Unload/Close:
// Swap atomically replaces the published version — new Gets see the
// new engine immediately while in-flight PredictBatch calls and open
// Sessions finish on the old one, which drains (runs its OnDrain
// hooks, closes Drained) only when its last reference is released.
// Registry errors are named too: core.ErrModelNotFound,
// core.ErrModelExists, core.ErrRegistryClosed.
//
// cmd/serve exposes the whole surface over HTTP: the /v1 routes —
// POST /v1/predict (JSON or gob tensors, coalesced behind the
// batcher) and GET|POST /v1/rollout (chunked streaming of session
// frames) — delegate to the default model unchanged, while /v2 adds
// the multi-model surface: GET /v2/models, per-model
// /v2/models/{name}/predict|rollout routed through per-model
// batchers, POST /v2/admin/load|swap|unload for zero-downtime
// rollouts from artifact directories, structured JSON error
// envelopes, /metrics counters (per-model requests, batch fill, swap
// count) and a /healthz that reports per-model readiness. Graceful
// drain on SIGTERM; internal/serve holds the handler plus the typed
// Client, scripts/loadtest.sh drives throughput, and
// scripts/smoke_swap.sh proves a mid-load hot swap drops zero
// requests. See the package examples (Example_enginePredict,
// Example_batcher, Example_httpClient, Example_registryHotSwap) for
// runnable end-to-end snippets.
//
// Above the single process sits cluster serving (DESIGN.md §14):
// cmd/router (internal/router) fronts N replica cmd/serve processes
// with a health-probed replica table (each replica's /healthz reports
// ok/degraded/draining plus its default model version and in-flight
// count; failed probes back off exponentially), least-loaded routing
// for predict and rendezvous-hash session pinning for streaming
// rollouts, and retry-once on connect failure — non-streaming
// responses are buffered before committing, so a replica dying
// mid-response replays invisibly on another replica while the dead
// one is marked down at once. POST /v2/admin/swap on the router rolls
// a deploy across the fleet one replica at a time, waiting for each
// replica's healthz to converge on the new version, so capacity never
// drops below N−1 (recorded as repro_router_swap_min_routable); warm
// standby replicas are probed but unrouted until /v2/admin/promote.
// `make smoke-cluster` proves the contract: kill -9 one replica under
// sustained load and every client request still succeeds,
// bit-identical to a single-replica golden run.
//
// Ahead of the batcher sits edge admission control (DESIGN.md §15).
// internal/admission wraps the front door of both cmd/serve and
// cmd/router (-policy, off by default) with three stages: CIDR
// allow/deny/classify via a longest-prefix-match trie over client IPs
// (IPv4 + IPv6, fuzzed against a linear-scan oracle), per-client
// token buckets keyed by identity header else IP, and priority
// classes with bounded deadline-aware queues that shed the lowest
// class first — a high-class arrival displaces the newest low-class
// waiter rather than being refused. Rejections are typed 403/429/503
// envelopes with Retry-After; per-class shed counters and a shed-wait
// histogram export on /metrics; the policy hot-reloads whole via
// POST /v2/admin/policy or SIGHUP with zero drops (running requests
// and bucket balances persist across the swap). cmd/policyc compiles
// the same rule table into an nftables ruleset for kernel-level
// pre-filtering, the in-process trie being the portable fallback.
// `make smoke-admission` saturates a one-slot policy and asserts
// every request gets exactly one typed outcome, gold-class traffic is
// never shed while bulk waits, and served bodies stay bit-identical
// to a no-admission golden run.
//
// The runtime is chaos-hardened and the serving path traced end to
// end (DESIGN.md §11). mpi.WithChaos attaches a seeded, deterministic
// fault plan (per-link delay / jitter / drop / duplicate / partition,
// parsed from a tiny rule DSL by mpi.ParseChaosRules) to any
// transport: order-preserving faults leave rollout frames
// bit-identical, lossy faults fail stop with the link named, and a
// starved receive hits a deadline instead of hanging —
// `make smoke-chaos` asserts all three in-process and across a
// 4-process TCP world (cmd/serve and cmd/infer take -chaos,
// -chaos-seed, -chaos-recv-timeout). Every HTTP request carries an
// X-Request-ID (minted or honored, echoed back, stamped into batcher
// and session errors via core.ContextWithRequestID), so a failed
// request names its ID, rank and link in one string; per-model
// request-latency and batch-fill histograms (internal/stats.Histogram,
// fixed log-spaced buckets) export on /metrics in the Prometheus
// histogram format, and perf regressions are gated by cmd/benchdiff
// against BENCH_baseline.json (make bench-compare).
//
// Inference has two compute widths (DESIGN.md §13). Float64 is the
// default and carries every bit-identity guarantee; core.WithPrecision
// (nn.F32) opts an Engine into the float32 path — float64 master
// weights narrowed and panel-packed once per Engine, AVX-512/AVX2 f32
// GEMM and direct-convolution kernels in between, one widening at the
// output — for ~1.76x rollout throughput within a documented error
// budget (EXPERIMENTS.md). The fused steady state allocates nothing
// per step, and the f32 path keeps its own determinism: bit-identical
// across worker counts, batch sizes, transports and reruns (cmd/serve,
// cmd/infer and cmd/train take -precision f64|f32).
//
// The message-passing runtime is transport-agnostic (DESIGN.md §8):
// the same World/Comm semantics (non-overtaking tagged p2p,
// collectives, Cartesian topology, CommStats + virtual network-cost
// accounting) run over in-process channels (mpi.NewWorld) or over
// length-prefixed TCP framing between independently launched
// processes (mpi.DialTCP; cmd/mpirun is the local rank launcher), so
// ranks can genuinely live in separate OS processes — cmd/train and
// cmd/infer take -transport tcp. Halo-exchange inference runs either
// blocking or as an overlapped pipeline (core.WithExchangeMode):
// non-blocking Isend/Irecv of the halo strips with the interior
// convolution tiles (nn.HaloSplit) computed while boundaries are in
// flight. Rollout frames are bit-identical across
// {mem, tcp} x {blocking, overlap}. Every substrate the scheme needs
// is implemented in this module:
//
//   - internal/tensor — dense float64 N-d tensors and the GEMM +
//     im2col convolution engine (blocked panel kernels with AVX2/
//     AVX-512 FMA assembly on amd64 and a portable fallback)
//   - internal/nn     — CNN layers with hand-derived backprop and a
//     native batch axis (batched outputs bit-identical per image), a
//     fast-path/slow-path engine switch (DESIGN.md §3, pinnable
//     per-network for serving), reusable scratch arenas,
//     weight-sharing clones for concurrent inference, and the
//     interior/boundary halo tile split behind the overlapped
//     exchange (DESIGN.md §8)
//   - internal/serve  — HTTP serving front end (predict + streaming
//     rollout handlers, /v2 registry surface + admin hot swap, typed
//     client) over Engine/Batcher/Registry (§9–§10)
//   - internal/opt    — SGD / momentum / RMSProp / ADAM (paper Eq. 3–6)
//   - internal/loss   — MSE / MAE / MAPE (paper Eq. 7) / SMAPE / Huber
//   - internal/mpi    — message-passing runtime with MPI semantics
//     (p2p, collectives, Cartesian topology, network model) over
//     pluggable transports: in-process channels or TCP sockets
//     (DESIGN.md §8)
//   - internal/grid, internal/euler — the linearized Euler solver
//     standing in for Ateles (paper Eq. 8, §IV-A)
//   - internal/decomp — the Fig. 2 domain decomposition
//   - internal/dataset, internal/model, internal/stats — data pipeline,
//     Table-I network builder, versioned model artifacts (§10),
//     evaluation metrics and lock-free latency histograms (§11)
//   - internal/autodiff — scalar reverse-mode AD, the oracle that
//     cross-validates every hand-written backward pass
//   - internal/viz — ASCII/PGM/PPM field rendering
//
// Five of the invariants above are enforced statically (DESIGN.md
// §12): internal/analysis implements repo-specific analyzers —
// errwrap (sentinels matched via errors.Is/As and wrapped with %w),
// ctxflow (a received context is never replaced by a fresh root),
// goroutinelife (every go statement in the runtime packages has a
// visible WaitGroup/close lifecycle), detpath (no wall clock, global
// RNG, or map iteration in the bit-deterministic packages), and
// closecheck (write-mode Close errors are checked) — compiled into
// cmd/repolint, runnable standalone (`go run ./cmd/repolint ./...`)
// or as `go vet -vettool`, gated by `make lint`, and re-asserted by a
// tier-1 clean-tree test. Violations are suppressed only line-by-line
// via `//repolint:allow <analyzer> -- <reason>`. The TCP frame codec,
// the chaos rule DSL, the admission policy parser and the LPM trie
// additionally carry native fuzz targets (`make fuzz-smoke`; extended
// nightly with `make race-stress`).
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation plus the serving exhibits
// (BenchmarkBatcherThroughput, BenchmarkSessionConcurrentRollout);
// see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
