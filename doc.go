// Package repro is a from-scratch Go reproduction of "Parallel Machine
// Learning of Partial Differential Equations" (Totounferoush, Ebrahimi
// Pour, Roller, Mehl — PDSEC/IPDPS 2021, arXiv:2103.01869).
//
// The paper's contribution — communication-free parallel training of
// per-subdomain CNN surrogates for PDE solvers, with point-to-point
// halo exchange at inference time — lives in internal/core, behind a
// session-oriented serving API (DESIGN.md §7): core.Trainer is the
// single cancellable training entrypoint (paper scheme, sequential
// reference, and the data-parallel baseline as options, with progress
// callbacks), and core.Engine wraps a trained ensemble for concurrent
// serving — any number of streaming rollout Sessions and one-shot
// Predict calls run at once over weight-sharing model clones
// (nn.Sequential.CloneShared), each cancellable mid-flight and O(1) in
// memory regardless of rollout depth.
//
// The message-passing runtime is transport-agnostic (DESIGN.md §8):
// the same World/Comm semantics (non-overtaking tagged p2p,
// collectives, Cartesian topology, CommStats + virtual network-cost
// accounting) run over in-process channels (mpi.NewWorld) or over
// length-prefixed TCP framing between independently launched
// processes (mpi.DialTCP; cmd/mpirun is the local rank launcher), so
// ranks can genuinely live in separate OS processes — cmd/train and
// cmd/infer take -transport tcp. Halo-exchange inference runs either
// blocking or as an overlapped pipeline (core.WithExchangeMode):
// non-blocking Isend/Irecv of the halo strips with the interior
// convolution tiles (nn.HaloSplit) computed while boundaries are in
// flight. Rollout frames are bit-identical across
// {mem, tcp} x {blocking, overlap}. Every substrate the scheme needs
// is implemented in this module:
//
//   - internal/tensor — dense float64 N-d tensors and the GEMM +
//     im2col convolution engine (blocked panel kernels with AVX2/
//     AVX-512 FMA assembly on amd64 and a portable fallback)
//   - internal/nn     — CNN layers with hand-derived backprop, a
//     fast-path/slow-path engine switch (DESIGN.md §3, pinnable
//     per-network for serving), reusable scratch arenas,
//     weight-sharing clones for concurrent inference, and the
//     interior/boundary halo tile split behind the overlapped
//     exchange (DESIGN.md §8)
//   - internal/opt    — SGD / momentum / RMSProp / ADAM (paper Eq. 3–6)
//   - internal/loss   — MSE / MAE / MAPE (paper Eq. 7) / SMAPE / Huber
//   - internal/mpi    — message-passing runtime with MPI semantics
//     (p2p, collectives, Cartesian topology, network model) over
//     pluggable transports: in-process channels or TCP sockets
//     (DESIGN.md §8)
//   - internal/grid, internal/euler — the linearized Euler solver
//     standing in for Ateles (paper Eq. 8, §IV-A)
//   - internal/decomp — the Fig. 2 domain decomposition
//   - internal/dataset, internal/model, internal/stats — data pipeline,
//     Table-I network builder, evaluation metrics
//   - internal/autodiff — scalar reverse-mode AD, the oracle that
//     cross-validates every hand-written backward pass
//   - internal/viz — ASCII/PGM/PPM field rendering
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package repro
