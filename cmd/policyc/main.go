// Command policyc compiles and checks admission policy files
// (DESIGN.md §15). It is the offline half of the edge admission
// pipeline: the same policy document cmd/serve and cmd/router enforce
// in-process through the longest-prefix-match trie can be validated
// before a deploy and compiled into an nftables ruleset for
// kernel-level pre-filtering — the markpash/ir-access approach, where
// large prefix sets become nft interval sets and the userspace
// matcher is the portable fallback.
//
// Usage:
//
//	policyc -policy policy.json                      # validate + summary
//	policyc -policy policy.json -emit nftables       # ruleset on stdout
//	policyc -policy policy.json -emit nftables -port 8080 | nft -c -f -
//
// Exit status is non-zero on any validation error, so CI can gate
// policy changes with `policyc -policy FILE`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/admission"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("policyc: ")

	var (
		policyPath = flag.String("policy", "", "admission policy file to compile (required)")
		emit       = flag.String("emit", "summary", "output: summary | nftables")
		port       = flag.Int("port", 0, "scope the nftables filter to this TCP dport (0 = all inbound; required for a default-deny final drop)")
	)
	flag.Parse()
	if *policyPath == "" {
		log.Fatal("usage: policyc -policy FILE [-emit summary|nftables] [-port N]")
	}

	pol, err := admission.LoadPolicyFile(*policyPath)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := pol.Compile()
	if err != nil {
		log.Fatal(err)
	}

	switch *emit {
	case "summary":
		fmt.Printf("policy %s: OK\n", *policyPath)
		fmt.Printf("  rules:          %d prefixes (default %s)\n", tab.Rules(), defaultAction(pol))
		fmt.Printf("  classes:        %s (default %s)\n", classList(tab), defaultClass(pol, tab))
		if pol.Rate > 0 {
			fmt.Printf("  rate limit:     %g req/s, burst %g per client\n", pol.Rate, effectiveBurst(pol))
		} else {
			fmt.Printf("  rate limit:     off\n")
		}
		if pol.MaxConcurrent > 0 {
			fmt.Printf("  shed budget:    %d concurrent\n", pol.MaxConcurrent)
		} else {
			fmt.Printf("  shed budget:    off\n")
		}
	case "nftables":
		if err := tab.EmitNFTables(os.Stdout, *port); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -emit %q (want summary or nftables)", *emit)
	}
}

func defaultAction(p *admission.Policy) string {
	if p.DefaultAction == "" {
		return "allow"
	}
	return p.DefaultAction
}

func classList(tab *admission.Table) string {
	return strings.Join(tab.Classes(), " > ")
}

func defaultClass(p *admission.Policy, tab *admission.Table) string {
	if p.DefaultClass != "" {
		return p.DefaultClass
	}
	names := tab.Classes()
	return names[len(names)-1]
}

func effectiveBurst(p *admission.Policy) float64 {
	if p.Burst > 0 {
		return p.Burst
	}
	if p.Rate > 1 {
		return p.Rate
	}
	return 1
}
