// Command train runs the paper's §III parallel training scheme (or
// one of the baselines) on a dataset produced by cmd/datagen, and
// writes one checkpoint per rank. Training runs under a
// signal-cancellable context: Ctrl-C aborts within one epoch instead
// of leaving a half-written checkpoint directory.
//
// Usage:
//
//	train -data data.gob -ranks 4 -epochs 40 -out ckpt
//	train -data data.gob -mode sequential -out ckpt
//	train -data data.gob -mode dataparallel -ranks 4
//
// With -transport tcp the process joins a multi-process mpi world
// (normally via cmd/mpirun, which appends -rank and -peers): each
// process then trains only its own rank's subdomain network and writes
// only that checkpoint, so the same binary runs the Fig. 4 scaling
// study as N real OS processes:
//
//	mpirun -n 4 -- train -data data.gob -ranks 4 -out ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")

	var (
		dataPath   = flag.String("data", "data.gob", "input dataset (from cmd/datagen)")
		mode       = flag.String("mode", "parallel", "parallel | sequential | dataparallel")
		ranks      = flag.Int("ranks", 4, "number of MPI ranks (subdomains or replicas)")
		epochs     = flag.Int("epochs", 40, "training epochs")
		batch      = flag.Int("batch", 8, "mini-batch size (0 = full batch)")
		lr         = flag.Float64("lr", 0.01, "learning rate (paper: 0.01)")
		optName    = flag.String("opt", "adam", "optimizer: adam | sgd | momentum | rmsprop")
		lossName   = flag.String("loss", "mape", "loss: mape | mse | mae | smape | huber")
		strategy   = flag.String("strategy", "zero-pad", "dimension matching: zero-pad | neighbor-pad | inner-crop | transpose-conv")
		trainFrac  = flag.Float64("trainfrac", 2.0/3.0, "fraction of snapshots used for training (paper: 1000/1500)")
		seed       = flag.Int64("seed", 1, "random seed")
		window     = flag.Int("window", 1, "temporal window: stack this many consecutive snapshots as network input (paper §V future work)")
		outDir     = flag.String("out", "ckpt", "model artifact output directory")
		mName      = flag.String("model-name", "", "model name recorded in the artifact manifest (default: the output directory's base name)")
		mVersion   = flag.String("model-version", "", "model version recorded in the artifact manifest (default: v1)")
		concurrent = flag.Bool("concurrent", false, "execute ranks concurrently (goroutines) instead of critical-path timing mode")
		workers    = flag.Int("workers", 1, "intra-layer parallelism of the convolution kernels (results are bit-identical for any value)")
		backend    = flag.String("conv", "gemm", "convolution engine: gemm (im2col fast path) | naive (reference loops)")
		precision  = flag.String("precision", "f64", "f64 | f32: training always runs f64; f32 verifies after training that the artifact can be served on the float32 path (core.WithPrecision)")
		progress   = flag.Bool("progress", false, "print per-rank per-epoch training losses as they happen")
		transport  = flag.String("transport", "mem", "mpi transport: mem (in-process) | tcp (multi-process; see cmd/mpirun)")
		tcpRank    = flag.Int("rank", 0, "this process's rank in the tcp world")
		worldSize  = flag.Int("world-size", 0, "expected tcp world size (0 = len(peers); checked against -peers)")
		peersFlag  = flag.String("peers", "", "comma-separated host:port of every rank, in rank order (tcp transport)")
	)
	flag.Parse()

	prec, err := nn.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels training within one epoch (core.Trainer contract).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	nTrain := int(float64(nds.Len()) * *trainFrac)
	train, val, err := nds.Split(nTrain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d snapshots on %dx%d (train %d / val %d)\n",
		ds.Len(), ds.Grid.Nx, ds.Grid.Ny, train.Len(), val.Len())

	strat, err := model.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	switch *backend {
	case "gemm":
		nn.Backend = nn.FastPath
	case "naive":
		nn.Backend = nn.SlowPath
	default:
		log.Fatalf("unknown convolution engine %q", *backend)
	}
	cfg := core.DefaultTrainConfig()
	cfg.Workers = *workers
	cfg.Epochs = *epochs
	cfg.BatchSize = *batch
	cfg.LR = *lr
	cfg.Optimizer = *optName
	cfg.Loss = *lossName
	cfg.Seed = *seed
	cfg.Model.Strategy = strat
	cfg.Model.Seed = *seed
	if *window > 1 {
		cfg.TemporalWindow = *window
		cfg.Model.Channels[0] = *window * grid.NumChannels
	}

	opts := []core.TrainerOption{}
	if *progress {
		opts = append(opts, core.WithProgress(func(p core.Progress) {
			fmt.Printf("  rank %d epoch %d: loss %.4g\n", p.Rank, p.Epoch, p.Loss)
		}))
	}

	// Multi-process world: join as one rank over TCP; the trainer then
	// trains only this process's ranks.
	var world *mpi.World
	switch *transport {
	case "mem":
	case "tcp":
		if *mode == "sequential" {
			log.Fatal("sequential mode is single-process; use -transport mem")
		}
		peers := strings.Split(*peersFlag, ",")
		if *peersFlag == "" || len(peers) < 2 {
			log.Fatal("-transport tcp needs -peers with at least two host:port entries (use cmd/mpirun)")
		}
		if *worldSize != 0 && *worldSize != len(peers) {
			log.Fatalf("-world-size %d does not match %d peers", *worldSize, len(peers))
		}
		if len(peers) != *ranks {
			log.Fatalf("tcp world of %d processes cannot host %d ranks (one rank per process)", len(peers), *ranks)
		}
		var err error
		world, err = mpi.DialTCP(mpi.TCPConfig{Rank: *tcpRank, Peers: peers})
		if err != nil {
			log.Fatal(err)
		}
		defer world.Close()
		fmt.Printf("joined tcp world as rank %d of %d\n", *tcpRank, len(peers))
		opts = append(opts, core.WithTrainerWorld(world))
	default:
		log.Fatalf("unknown transport %q", *transport)
	}

	switch *mode {
	case "parallel":
		px, py := mpi.BalancedDims(*ranks)
		execMode := core.CriticalPath
		if *concurrent {
			execMode = core.Concurrent
		}
		fmt.Printf("parallel training on %dx%d ranks, strategy %v, %s/%s, %d epochs (%v mode)\n",
			px, py, strat, *optName, *lossName, *epochs, execMode)
		trainer, err := core.NewTrainer(cfg, append(opts,
			core.WithTopology(px, py), core.WithExecMode(execMode))...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := trainer.Train(ctx, train)
		if err != nil {
			log.Fatal(err)
		}
		res := rep.Parallel
		tbl := stats.NewTable("per-rank results", "rank", "block", "final-loss", "seconds")
		trained := 0
		for _, rr := range res.Ranks {
			if rr.Model == nil {
				continue // a remote process's rank (tcp world)
			}
			trained++
			tbl.Add(fmt.Sprint(rr.Rank), rr.Block.String(),
				fmt.Sprintf("%.4g", rr.FinalLoss()), fmt.Sprintf("%.3f", rr.Seconds))
		}
		fmt.Print(tbl.String())
		if world != nil {
			fmt.Printf("trained %d local rank(s) in %.3fs, training comm: %d msgs\n",
				trained, res.CriticalPathSeconds, res.TrainCommStats.MessagesSent)
		} else {
			fmt.Printf("critical path %.3fs, total compute %.3fs, speedup %.2fx, training comm: %d msgs\n",
				res.CriticalPathSeconds, res.TotalComputeSeconds, res.Speedup(), res.TrainCommStats.MessagesSent)
		}
		if world != nil {
			// A multi-process job writes only this process's rank files
			// into the shared directory — no single process holds every
			// payload, so the manifest is written afterwards with
			// `inspect -ckpt <dir> -migrate` once all ranks have landed.
			if err := saveRankCheckpoints(res, *outDir); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rank checkpoints written to %s/ (run 'inspect -ckpt %s -migrate' after all ranks finish to add the manifest)\n", *outDir, *outDir)
		} else {
			if err := core.SaveModel(res.Ensemble(), *outDir, *mName, *mVersion); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("model artifact written to %s/ (manifest + %d rank payloads)\n", *outDir, len(res.Ranks))
		}
		if prec == nn.F32 {
			for _, rr := range res.Ranks {
				checkF32Readiness(rr.Rank, rr.Model)
			}
			fmt.Println("f32 serving path verified (training ran f64; serve with -precision f32)")
		}

	case "sequential":
		fmt.Printf("sequential whole-domain training, %d epochs\n", *epochs)
		trainer, err := core.NewTrainer(cfg, opts...) // default topology: 1x1
		if err != nil {
			log.Fatal(err)
		}
		rep, err := trainer.Train(ctx, train)
		if err != nil {
			log.Fatal(err)
		}
		rr := &rep.Parallel.Ranks[0]
		fmt.Printf("final loss %.4g in %.3fs\n", rr.FinalLoss(), rr.Seconds)
		ck := model.Snapshot(cfg.Model, rr.Model)
		ck.Px, ck.Py = 1, 1
		ck.Nx, ck.Ny = ds.Grid.Nx, ds.Grid.Ny
		ck.Window = cfg.Window()
		name := *mName
		if name == "" {
			name = filepath.Base(filepath.Clean(*outDir))
		}
		man, err := model.NewManifest(name, *mVersion, []*model.Checkpoint{ck})
		if err != nil {
			log.Fatal(err)
		}
		if err := model.WriteArtifact(*outDir, man, []*model.Checkpoint{ck}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model artifact written to %s/ (manifest + rank0.gob)\n", *outDir)
		if prec == nn.F32 {
			checkF32Readiness(0, rr.Model)
			fmt.Println("f32 serving path verified (training ran f64; serve with -precision f32)")
		}

	case "dataparallel":
		fmt.Printf("data-parallel baseline (weight averaging) on %d replicas, %d epochs\n", *ranks, *epochs)
		trainer, err := core.NewTrainer(cfg, append(opts, core.WithDataParallel(*ranks))...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := trainer.Train(ctx, train)
		if err != nil {
			log.Fatal(err)
		}
		res := rep.DataParallel
		if res.Model != nil { // the process hosting rank 0 (or any in-process run)
			fmt.Printf("final loss %.4g in %.3fs wall\n", res.FinalLoss(), res.WallSeconds)
			if prec == nn.F32 {
				checkF32Readiness(0, res.Model)
				fmt.Println("f32 serving path verified (training ran f64; serve with -precision f32)")
			}
		}
		fmt.Printf("training communication: %d msgs, %.2f MB (the paper's scheme uses none)\n",
			res.CommStats.MessagesSent, float64(res.CommStats.BytesSent)/1e6)

	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// checkF32Readiness probes one trained model's float32 serving path
// (the -precision f32 post-train assertion: training itself always
// runs float64 — the optimizer mutates weights every step, which would
// thrash the packed-weight cache). A nil model (a remote process's
// rank on a tcp world) is skipped.
func checkF32Readiness(rank int, m *nn.Sequential) {
	if m == nil {
		return
	}
	if err := m.CloneShared().SetPrecision(nn.F32); err != nil {
		log.Fatalf("-precision f32: rank %d model cannot serve float32: %v", rank, err)
	}
}

// saveRankCheckpoints writes one checkpoint per locally trained rank
// plus nothing else; the checkpoints carry the partition metadata
// inference needs. In a multi-process job each process contributes its
// own rank's file to the shared directory (legacy layout — migrate to
// an artifact manifest afterwards with cmd/inspect).
func saveRankCheckpoints(res *core.ParallelResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rr := range res.Ranks {
		if rr.Model == nil {
			continue // trained by another process
		}
		ck := model.Snapshot(res.Config.Model, rr.Model)
		ck.Rank = rr.Rank
		ck.Px, ck.Py = res.Partition.Px, res.Partition.Py
		ck.Nx, ck.Ny = res.Partition.Nx, res.Partition.Ny
		ck.Window = res.Config.Window()
		if err := ck.Save(filepath.Join(dir, fmt.Sprintf("rank%d.gob", rr.Rank))); err != nil {
			return err
		}
	}
	return nil
}
