// Command datagen generates a linearized-Euler snapshot dataset, the
// stand-in for the paper's Ateles simulation run (§IV-A): a Gaussian
// pressure pulse in a square domain, recorded for a configurable
// number of time steps.
//
// Usage:
//
//	datagen -n 64 -snapshots 300 -out data.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/euler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		n         = flag.Int("n", 64, "grid points per direction (paper: 256)")
		snapshots = flag.Int("snapshots", 300, "number of snapshots to record (paper: 1500)")
		stride    = flag.Int("stride", 1, "solver steps between snapshots")
		amplitude = flag.Float64("amplitude", 0.5, "Gaussian pulse amplitude (paper: 0.5)")
		halfWidth = flag.Float64("halfwidth", 0.3, "Gaussian pulse half-width in m (paper: 0.3)")
		cfl       = flag.Float64("cfl", 0.4, "CFL number of the solver")
		out       = flag.String("out", "data.gob", "output dataset path")
	)
	flag.Parse()

	cfg := euler.DefaultConfig(*n)
	cfg.Amplitude = *amplitude
	cfg.HalfWidth = *halfWidth
	cfg.CFL = *cfl

	fmt.Printf("generating %d snapshots on a %dx%d grid (dt=%.5f, c=%.3f)\n",
		*snapshots, *n, *n, cfg.StableDt()*float64(*stride), cfg.SoundSpeed())

	ds, err := dataset.Generate(dataset.GenConfig{
		Euler:            cfg,
		NumSnapshots:     *snapshots,
		StepsPerSnapshot: *stride,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d snapshots, %.1f MB)\n", *out, ds.Len(), float64(info.Size())/1e6)
}
