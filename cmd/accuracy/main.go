// Command accuracy reproduces Fig. 3: train the parallel scheme on
// the Gaussian-pulse workload, predict one step ahead on validation
// snapshots, and report the per-channel agreement between prediction
// and target (density, pressure, velocity-x, velocity-y). It also
// renders coarse ASCII heat maps of the predicted and target pressure
// fields so the agreement is visible without a plotting stack.
//
// Usage:
//
//	accuracy -n 64 -snapshots 300 -epochs 40 -ranks 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/opt"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("accuracy: ")

	var (
		n      = flag.Int("n", 64, "grid points per direction (paper: 256)")
		snaps  = flag.Int("snapshots", 300, "snapshots to generate (paper: 1500); enough for the wave to reflect within the training portion")
		epochs = flag.Int("epochs", 40, "training epochs")
		ranks  = flag.Int("ranks", 4, "number of subdomains/ranks")
		lr     = flag.Float64("lr", 0.003, "learning rate (cosine-annealed)")
		lossN  = flag.String("loss", "mape", "training loss")
		maps   = flag.Bool("maps", true, "print ASCII field maps")
	)
	flag.Parse()

	fmt.Printf("generating %d snapshots on %dx%d...\n", *snaps, *n, *n)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(*n), NumSnapshots: *snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	nTrain := nds.Len() * 2 / 3 // paper: 1000 of 1500
	train, val, err := nds.Split(nTrain)
	if err != nil {
		log.Fatal(err)
	}

	px, py := mpi.BalancedDims(*ranks)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Loss = *lossN
	cfg.LR = *lr
	cfg.BatchSize = 4
	cfg.Schedule = opt.Cosine{Base: *lr, Floor: *lr / 30, Total: *epochs}
	fmt.Printf("training %d nets (%dx%d) for %d epochs with %s loss...\n", *ranks, px, py, *epochs, *lossN)
	trainer, err := core.NewTrainer(cfg, core.WithTopology(px, py))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trainer.Train(context.Background(), train)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Parallel
	fmt.Printf("training done: critical path %.2fs, final losses ", res.CriticalPathSeconds)
	for _, rr := range res.Ranks {
		fmt.Printf("%.3g ", rr.FinalLoss())
	}
	fmt.Println()

	// One-step prediction over the validation pairs (Fig. 3 protocol:
	// "input and output data are chosen randomly from the validation
	// data set" — we evaluate all pairs and report the mean, plus maps
	// of one representative pair). Served through the Engine so the
	// shared ensemble is never mutated.
	eng, err := core.NewEngine(rep.Ensemble())
	if err != nil {
		log.Fatal(err)
	}
	valPairs := val.Pairs()
	if len(valPairs) == 0 {
		log.Fatal("no validation pairs; increase -snapshots")
	}
	agg := make([]*tensor.Tensor, 0, len(valPairs))
	tgt := make([]*tensor.Tensor, 0, len(valPairs))
	for _, pr := range valPairs {
		pred, err := eng.Predict(context.Background(), pr.Input)
		if err != nil {
			log.Fatal(err)
		}
		agg = append(agg, pred)
		tgt = append(tgt, pr.Target)
	}
	predBatch := tensor.Stack(agg)
	tgtBatch := tensor.Stack(tgt)
	per := stats.PerChannel(predBatch, tgtBatch)

	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 3 — one-step prediction vs target over %d validation pairs", len(valPairs)),
		"channel", "mape[%]", "mse", "rmse", "linf", "r2")
	for c, m := range per {
		tbl.Add(grid.ChannelNames[c],
			fmt.Sprintf("%.3f", m.MAPE), fmt.Sprintf("%.3e", m.MSE),
			fmt.Sprintf("%.3e", m.RMSE), fmt.Sprintf("%.3e", m.Linf),
			fmt.Sprintf("%.4f", m.R2))
	}
	fmt.Print(tbl.String())

	if *maps {
		mid := len(valPairs) / 2
		fmt.Println("\npressure field, target (left) vs prediction (right):")
		lines := viz.SideBySide(
			viz.AsciiMap(tensor.Channel(tgtBatch, mid, grid.ChanPressure), 16, 32),
			viz.AsciiMap(tensor.Channel(predBatch, mid, grid.ChanPressure), 16, 32),
			"   |   ")
		for _, l := range lines {
			fmt.Println(l)
		}
	}
}
