// Command mpirun is the local multi-process rank launcher: it starts N
// copies of a command, wiring each one into a TCP mpi world
// (DESIGN.md §8) by appending the flags the serving commands
// understand:
//
//	-transport tcp -rank <i> -peers <addr0,addr1,...>
//
// Free localhost ports are reserved up front, so the same invocation
// that runs one process runs N real OS processes exchanging halos over
// sockets — the Fig. 4 strong-scaling experiment as an actual
// multi-process job:
//
//	mpirun -n 4 -- ./train -data data.gob -ranks 4 -concurrent -out ckpt
//	mpirun -n 4 -- ./infer -data data.gob -ckpt ckpt -steps 10 -exchange overlap
//
// Child stdout/stderr lines are prefixed with their rank. If any rank
// exits non-zero (or the launcher receives Ctrl-C), the remaining
// ranks are killed — the fail-stop contract the TCP transport assumes.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mpi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpirun: ")

	var (
		n     = flag.Int("n", 4, "number of ranks (one OS process each)")
		host  = flag.String("host", "", "advertise this host instead of 127.0.0.1 (ports are still reserved locally)")
		quiet = flag.Bool("quiet", false, "suppress the launch banner")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mpirun [-n N] -- command [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	argv := flag.Args()
	if len(argv) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *n <= 0 {
		log.Fatalf("invalid rank count %d", *n)
	}

	addrs, err := mpi.ReserveLocalAddrs(*n)
	if err != nil {
		log.Fatal(err)
	}
	if *host != "" {
		for i, a := range addrs {
			_, port, ok := strings.Cut(a, ":")
			if !ok {
				log.Fatalf("unparseable reserved address %q", a)
			}
			addrs[i] = *host + ":" + port
		}
	}
	peers := strings.Join(addrs, ",")
	if !*quiet {
		log.Printf("launching %d ranks of %s over tcp (%s)", *n, argv[0], peers)
	}

	// Ctrl-C (or any child failure, via cancel) tears the whole job
	// down; children also get the signal directly and may exit cleanly
	// first.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithCancel(sigCtx)
	defer cancel()

	var mu sync.Mutex // serializes output lines across ranks
	prefixPipe := func(rank int, r io.Reader, w io.Writer, wg *sync.WaitGroup) {
		defer wg.Done()
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			mu.Lock()
			fmt.Fprintf(w, "[rank %d] %s\n", rank, sc.Text())
			mu.Unlock()
		}
	}

	errs := make([]error, *n)
	var wg sync.WaitGroup
	for r := 0; r < *n; r++ {
		args := append(append([]string(nil), argv[1:]...),
			"-transport", "tcp", "-rank", strconv.Itoa(r), "-peers", peers)
		cmd := exec.CommandContext(ctx, argv[0], args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			cancel()
			log.Fatalf("rank %d: %v", r, err)
		}
		var pipes sync.WaitGroup
		pipes.Add(2)
		go prefixPipe(r, stdout, os.Stdout, &pipes)
		go prefixPipe(r, stderr, os.Stderr, &pipes)
		wg.Add(1)
		go func(r int, cmd *exec.Cmd, pipes *sync.WaitGroup) {
			defer wg.Done()
			pipes.Wait()
			if err := cmd.Wait(); err != nil {
				errs[r] = err
				cancel() // fail-stop: take the rest of the job down
			}
		}(r, cmd, &pipes)
	}
	wg.Wait()

	code := 0
	for r, err := range errs {
		if err != nil {
			log.Printf("rank %d: %v", r, err)
			code = 1
		}
	}
	if code == 0 && sigCtx.Err() != nil {
		// Every child exited cleanly, but only because the job was
		// interrupted — don't let callers mistake that for success.
		code = 130
	}
	os.Exit(code)
}
