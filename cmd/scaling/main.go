// Command scaling reproduces Fig. 4: the strong-scaling study of the
// parallel training scheme. A fixed global problem is trained with
// P = 1, 4, 16, 64 ranks (configurable); per-rank compute times are
// measured in isolation and the critical path max(t_r) is reported as
// the parallel training time, together with speedup and efficiency
// (see DESIGN.md §5 for why this timing model is exact for a
// communication-free scheme).
//
// Usage:
//
//	scaling -n 64 -snapshots 60 -epochs 3 -ranks 1,4,16,64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")

	var (
		n        = flag.Int("n", 64, "grid points per direction (paper: 256)")
		snaps    = flag.Int("snapshots", 60, "snapshots to generate (paper: 1500)")
		epochs   = flag.Int("epochs", 3, "training epochs per configuration")
		batch    = flag.Int("batch", 8, "mini-batch size")
		rankList = flag.String("ranks", "1,4,16,64", "comma-separated rank counts (paper: 1,4,16,64)")
		csv      = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	var ranks []int
	for _, s := range strings.Split(*rankList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			log.Fatalf("bad rank count %q", s)
		}
		ranks = append(ranks, v)
	}

	fmt.Printf("generating %d snapshots on %dx%d...\n", *snaps, *n, *n)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(*n), NumSnapshots: *snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)

	cfg := core.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.BatchSize = *batch

	var table stats.ScalingTable
	for _, p := range ranks {
		px, py := mpi.BalancedDims(p)
		trainer, err := core.NewTrainer(cfg, core.WithTopology(px, py))
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		rep, err := trainer.Train(context.Background(), nds)
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		res := rep.Parallel
		table.Add(p, res.CriticalPathSeconds)
		fmt.Printf("P=%-3d (%dx%d): critical path %.3fs, total %.3fs, train comm msgs %d\n",
			p, px, py, res.CriticalPathSeconds, res.TotalComputeSeconds, res.TrainCommStats.MessagesSent)
	}

	out := table.Render(fmt.Sprintf("Fig. 4 — strong scaling, %dx%d grid, %d training pairs, %d epochs",
		*n, *n, nds.Len()-1, *epochs))
	if *csv {
		if err := out.WriteCSV(log.Writer()); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println()
	fmt.Print(out.String())
	fmt.Println("\npaper reference shape: T(1)≈4096s → T(64)≈64s on 256x256 / 1000 pairs — near-perfect 1/P")
}
