// Command inspect summarizes a dataset produced by cmd/datagen —
// per-channel value ranges over time, acoustic energy decay, an ASCII
// rendering of any snapshot, and optional PGM/PPM image export — or,
// with -ckpt, a model artifact directory: it prints the manifest
// (name, version, format, partition, digests), verifies every payload
// against its SHA-256, and with -migrate upgrades a legacy bare
// rank<N>.gob directory to the versioned artifact format in place.
//
// Usage:
//
//	inspect -data data.gob
//	inspect -data data.gob -snapshot 100 -channel pressure -ppm out.ppm
//	inspect -ckpt ckpt
//	inspect -ckpt ckpt -migrate -model-name prod -model-version v2
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")

	var (
		dataPath = flag.String("data", "data.gob", "dataset to inspect")
		snapIdx  = flag.Int("snapshot", -1, "snapshot to render (-1 = middle)")
		channel  = flag.String("channel", "pressure", "channel to render: density | pressure | velocity-x | velocity-y")
		pgmPath  = flag.String("pgm", "", "write the rendered field as a PGM image")
		ppmPath  = flag.String("ppm", "", "write the rendered field as a diverging-colormap PPM image")
		every    = flag.Int("every", 0, "print range rows every N snapshots (0 = auto)")
		ckptDir  = flag.String("ckpt", "", "model artifact (or legacy checkpoint) directory to inspect instead of a dataset")
		migrate  = flag.Bool("migrate", false, "with -ckpt: upgrade a legacy rank<N>.gob directory to the versioned artifact format (writes manifest.json)")
		mName    = flag.String("model-name", "", "with -migrate: model name for the new manifest (default: directory base name)")
		mVersion = flag.String("model-version", "", "with -migrate: model version for the new manifest (default: v1)")
	)
	flag.Parse()

	if *ckptDir != "" {
		inspectModel(*ckptDir, *migrate, *mName, *mVersion)
		return
	}

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d snapshots on %dx%d, dt=%.6f (span %.3f time units)\n",
		ds.Len(), ds.Grid.Nx, ds.Grid.Ny, ds.Dt, ds.Dt*float64(ds.Len()-1))

	ch := -1
	for c, name := range grid.ChannelNames {
		if name == *channel {
			ch = c
		}
	}
	if ch < 0 {
		log.Fatalf("unknown channel %q (want one of %v)", *channel, grid.ChannelNames)
	}

	// Per-channel range evolution.
	step := *every
	if step <= 0 {
		step = ds.Len() / 8
		if step == 0 {
			step = 1
		}
	}
	tbl := stats.NewTable("per-channel value ranges over time",
		"snap", "time", "ρ' range", "p' range", "u' range", "v' range")
	for i := 0; i < ds.Len(); i += step {
		s := ds.Snapshots[i]
		row := []string{fmt.Sprint(i), fmt.Sprintf("%.3f", float64(i)*ds.Dt)}
		for c := 0; c < grid.NumChannels; c++ {
			f := tensor.Channel(s.Reshape(1, s.Dim(0), s.Dim(1), s.Dim(2)), 0, c)
			row = append(row, fmt.Sprintf("[%.3g,%.3g]", f.Min(), f.Max()))
		}
		tbl.Add(row...)
	}
	fmt.Print(tbl.String())

	idx := *snapIdx
	if idx < 0 {
		idx = ds.Len() / 2
	}
	if idx >= ds.Len() {
		log.Fatalf("snapshot %d out of range [0,%d)", idx, ds.Len())
	}
	s := ds.Snapshots[idx]
	field := tensor.Channel(s.Reshape(1, s.Dim(0), s.Dim(1), s.Dim(2)), 0, ch)

	fmt.Printf("\n%s at snapshot %d (t=%.3f), range [%.4g, %.4g]:\n",
		grid.ChannelNames[ch], idx, float64(idx)*ds.Dt, field.Min(), field.Max())
	for _, line := range viz.AsciiMap(field, 16, 32) {
		fmt.Println(line)
	}

	if *pgmPath != "" {
		if err := writeImage(*pgmPath, field, viz.WritePGM); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pgmPath)
	}
	if *ppmPath != "" {
		if err := writeImage(*ppmPath, field, viz.WritePPMDiverging); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *ppmPath)
	}
}

// inspectModel prints (and optionally migrates) a model directory.
func inspectModel(dir string, migrate bool, name, version string) {
	if migrate {
		if name == "" {
			name = filepath.Base(filepath.Clean(dir))
		}
		man, err := model.Migrate(dir, name, version)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated %s to artifact format %d (model %s@%s, %d payloads)\n",
			dir, man.FormatVersion, man.Name, man.Version, len(man.Payloads))
	}
	man, err := model.ReadManifest(dir)
	switch {
	case err == nil:
		fmt.Printf("artifact %s: model %s@%s (format %d, created %s)\n",
			dir, man.Name, man.Version, man.FormatVersion, man.CreatedAt.Format("2006-01-02 15:04:05 MST"))
		fmt.Printf("  partition: %dx%d ranks on %dx%d grid, strategy %v, window %d\n",
			man.Px, man.Py, man.Nx, man.Ny, man.Config.Strategy, max(man.Window, 1))
		tbl := stats.NewTable("payloads", "rank", "file", "bytes", "sha256")
		for _, p := range man.Payloads {
			sum := p.SHA256
			if len(sum) > 16 {
				sum = sum[:16] + "…"
			}
			tbl.Add(fmt.Sprint(p.Rank), p.File, fmt.Sprint(p.Size), sum)
		}
		fmt.Print(tbl.String())
		if err := man.Verify(dir); err != nil {
			log.Fatalf("digest verification FAILED: %v", err)
		}
		fmt.Println("all payload digests verified")
	case errors.Is(err, model.ErrNoManifest):
		fmt.Printf("%s: legacy layout (no %s) — pass -migrate to upgrade\n", dir, model.ManifestName)
	default:
		// A manifest exists but is unreadable (corrupt JSON, future
		// format, bad metadata): -migrate cannot help here.
		log.Fatal(err)
	}
	// Either way, prove the directory actually loads as an ensemble.
	e, _, err := core.OpenModel(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loads OK: %d rank model(s), %d layers each\n", len(e.Models), len(e.Models[0].Layers()))
}

func writeImage(path string, f *tensor.Tensor, render func(w io.Writer, f *tensor.Tensor) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(file, f); err != nil {
		//repolint:allow closecheck -- error path: the render error is already being returned
		file.Close()
		return err
	}
	// The render's buffered writes may flush at Close; discarding its
	// error could report a truncated image as written.
	return file.Close()
}
