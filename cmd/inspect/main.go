// Command inspect summarizes a dataset produced by cmd/datagen:
// per-channel value ranges over time, acoustic energy decay, an ASCII
// rendering of any snapshot, and optional PGM/PPM image export of the
// physical fields.
//
// Usage:
//
//	inspect -data data.gob
//	inspect -data data.gob -snapshot 100 -channel pressure -ppm out.ppm
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")

	var (
		dataPath = flag.String("data", "data.gob", "dataset to inspect")
		snapIdx  = flag.Int("snapshot", -1, "snapshot to render (-1 = middle)")
		channel  = flag.String("channel", "pressure", "channel to render: density | pressure | velocity-x | velocity-y")
		pgmPath  = flag.String("pgm", "", "write the rendered field as a PGM image")
		ppmPath  = flag.String("ppm", "", "write the rendered field as a diverging-colormap PPM image")
		every    = flag.Int("every", 0, "print range rows every N snapshots (0 = auto)")
	)
	flag.Parse()

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d snapshots on %dx%d, dt=%.6f (span %.3f time units)\n",
		ds.Len(), ds.Grid.Nx, ds.Grid.Ny, ds.Dt, ds.Dt*float64(ds.Len()-1))

	ch := -1
	for c, name := range grid.ChannelNames {
		if name == *channel {
			ch = c
		}
	}
	if ch < 0 {
		log.Fatalf("unknown channel %q (want one of %v)", *channel, grid.ChannelNames)
	}

	// Per-channel range evolution.
	step := *every
	if step <= 0 {
		step = ds.Len() / 8
		if step == 0 {
			step = 1
		}
	}
	tbl := stats.NewTable("per-channel value ranges over time",
		"snap", "time", "ρ' range", "p' range", "u' range", "v' range")
	for i := 0; i < ds.Len(); i += step {
		s := ds.Snapshots[i]
		row := []string{fmt.Sprint(i), fmt.Sprintf("%.3f", float64(i)*ds.Dt)}
		for c := 0; c < grid.NumChannels; c++ {
			f := tensor.Channel(s.Reshape(1, s.Dim(0), s.Dim(1), s.Dim(2)), 0, c)
			row = append(row, fmt.Sprintf("[%.3g,%.3g]", f.Min(), f.Max()))
		}
		tbl.Add(row...)
	}
	fmt.Print(tbl.String())

	idx := *snapIdx
	if idx < 0 {
		idx = ds.Len() / 2
	}
	if idx >= ds.Len() {
		log.Fatalf("snapshot %d out of range [0,%d)", idx, ds.Len())
	}
	s := ds.Snapshots[idx]
	field := tensor.Channel(s.Reshape(1, s.Dim(0), s.Dim(1), s.Dim(2)), 0, ch)

	fmt.Printf("\n%s at snapshot %d (t=%.3f), range [%.4g, %.4g]:\n",
		grid.ChannelNames[ch], idx, float64(idx)*ds.Dt, field.Min(), field.Max())
	for _, line := range viz.AsciiMap(field, 16, 32) {
		fmt.Println(line)
	}

	if *pgmPath != "" {
		if err := writeImage(*pgmPath, field, viz.WritePGM); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pgmPath)
	}
	if *ppmPath != "" {
		if err := writeImage(*ppmPath, field, viz.WritePPMDiverging); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *ppmPath)
	}
}

func writeImage(path string, f *tensor.Tensor, render func(w io.Writer, f *tensor.Tensor) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return render(file, f)
}
