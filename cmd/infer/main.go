// Command infer loads the per-rank checkpoints written by cmd/train
// and runs the §III parallel inference: a multi-step autoregressive
// rollout with point-to-point halo exchange, validated against the
// solver's own trajectory.
//
// Usage:
//
//	infer -data data.gob -ckpt ckpt -steps 10
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("infer: ")

	var (
		dataPath  = flag.String("data", "data.gob", "dataset the model was trained on")
		ckptDir   = flag.String("ckpt", "ckpt", "checkpoint directory from cmd/train")
		steps     = flag.Int("steps", 10, "rollout depth")
		startAt   = flag.Int("start", -1, "snapshot index to start from (-1 = first validation snapshot)")
		trainFrac = flag.Float64("trainfrac", 2.0/3.0, "train fraction used at training time")
		network   = flag.String("network", "ethernet", "virtual network model: ethernet | infiniband | none")
		workers   = flag.Int("workers", 1, "intra-layer parallelism of the convolution kernels (results are bit-identical for any value)")
		backend   = flag.String("conv", "gemm", "convolution engine: gemm (im2col fast path) | naive (reference loops)")
	)
	flag.Parse()

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)

	switch *backend {
	case "gemm":
		nn.Backend = nn.FastPath
	case "naive":
		nn.Backend = nn.SlowPath
	default:
		log.Fatalf("unknown convolution engine %q", *backend)
	}

	e, err := core.LoadEnsemble(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	e.SetWorkers(*workers)
	fmt.Printf("ensemble: %dx%d ranks on %dx%d grid, strategy %v\n",
		e.Partition.Px, e.Partition.Py, e.Partition.Nx, e.Partition.Ny, e.ModelCfg.Strategy)

	start := *startAt
	if start < 0 {
		start = int(float64(nds.Len()) * *trainFrac)
	}
	if start+*steps >= nds.Len() {
		log.Fatalf("rollout of %d steps from snapshot %d exceeds dataset length %d", *steps, start, nds.Len())
	}

	var nm *mpi.NetModel
	switch *network {
	case "ethernet":
		nm = mpi.ClusterEthernet()
	case "infiniband":
		nm = mpi.ClusterInfiniband()
	case "none":
	default:
		log.Fatalf("unknown network model %q", *network)
	}

	window := e.Window
	if window < 1 {
		window = 1
	}
	if start-window+1 < 0 {
		log.Fatalf("start snapshot %d too early for temporal window %d", start, window)
	}
	roll, err := e.RolloutSeq(nds.Snapshots[start-window+1:start+1], *steps, nm)
	if err != nil {
		log.Fatal(err)
	}

	tbl := stats.NewTable(
		fmt.Sprintf("rollout from snapshot %d (validation region)", start),
		"step", "mape[%]", "mse", "linf", "r2")
	for k, pred := range roll.Steps {
		m := stats.Compute(pred, nds.Snapshots[start+k+1])
		tbl.Add(fmt.Sprint(k+1),
			fmt.Sprintf("%.3f", m.MAPE), fmt.Sprintf("%.3e", m.MSE),
			fmt.Sprintf("%.3e", m.Linf), fmt.Sprintf("%.4f", m.R2))
	}
	fmt.Print(tbl.String())

	// Per-channel view of the final step (the Fig. 3 comparison).
	final := roll.Steps[len(roll.Steps)-1]
	per := stats.PerChannel(final, nds.Snapshots[start+*steps])
	ctbl := stats.NewTable("final step per channel", "channel", "mape[%]", "mse", "r2")
	for c, m := range per {
		ctbl.Add(grid.ChannelNames[c], fmt.Sprintf("%.3f", m.MAPE),
			fmt.Sprintf("%.3e", m.MSE), fmt.Sprintf("%.4f", m.R2))
	}
	fmt.Print(ctbl.String())

	fmt.Printf("communication: %d msgs / %.2f KB total, halo share: %d msgs / %.2f KB",
		roll.CommStats.MessagesSent, float64(roll.CommStats.BytesSent)/1e3,
		roll.HaloCommStats.MessagesSent, float64(roll.HaloCommStats.BytesSent)/1e3)
	if nm != nil {
		fmt.Printf(", virtual comm time %.4fs", roll.CommStats.VirtualCommSeconds)
	}
	fmt.Println()
}
