// Command infer loads the per-rank checkpoints written by cmd/train
// and serves the §III parallel inference through the Engine/Session
// API: a streaming autoregressive rollout with point-to-point halo
// exchange, validated step by step against the solver's own
// trajectory. Frames are scored and discarded as they are produced
// (O(1) memory in the rollout depth), and Ctrl-C cancels the session
// within one step.
//
// Usage:
//
//	infer -data data.gob -ckpt ckpt -steps 10
//
// -exchange overlap switches the halo exchange to the overlapped
// schedule (interior convolution tiles compute while boundary strips
// are in flight; frames are bit-identical to blocking). With
// -transport tcp the process joins a multi-process mpi world (normally
// via cmd/mpirun, which appends -rank and -peers); each process then
// computes only its own rank's subdomain and the process hosting
// rank 0 scores and prints the rollout:
//
//	mpirun -n 4 -- infer -data data.gob -ckpt ckpt -steps 10 -exchange overlap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("infer: ")

	var (
		dataPath  = flag.String("data", "data.gob", "dataset the model was trained on")
		ckptDir   = flag.String("ckpt", "ckpt", "checkpoint directory from cmd/train")
		steps     = flag.Int("steps", 10, "rollout depth")
		startAt   = flag.Int("start", -1, "snapshot index to start from (-1 = first validation snapshot)")
		trainFrac = flag.Float64("trainfrac", 2.0/3.0, "train fraction used at training time")
		network   = flag.String("network", "ethernet", "virtual network model: ethernet | infiniband | none")
		workers   = flag.Int("workers", 1, "intra-layer parallelism of the convolution kernels (results are bit-identical for any value)")
		backend   = flag.String("conv", "gemm", "convolution engine: gemm (im2col fast path) | naive (reference loops)")
		precision = flag.String("precision", "f64", "compute precision: f64 (reference, bit-reproducible) | f32 (faster, within documented error budget)")
		exchange  = flag.String("exchange", "blocking", "halo exchange schedule: blocking | overlap (bit-identical frames)")
		transport = flag.String("transport", "mem", "mpi transport: mem (in-process) | tcp (multi-process; see cmd/mpirun)")
		tcpRank   = flag.Int("rank", 0, "this process's rank in the tcp world")
		worldSize = flag.Int("world-size", 0, "expected tcp world size (0 = len(peers); checked against -peers)")
		peersFlag = flag.String("peers", "", "comma-separated host:port of every rank, in rank order (tcp transport)")

		chaosSpec   = flag.String("chaos", "", "fault-injection rules, e.g. 'delay:*>*:d=2ms:p=0.5,drop:1>0:p=0.3' (kinds: delay|jitter|drop|dup|partition; testing only)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos fault schedule")
		chaosRecvTO = flag.Duration("chaos-recv-timeout", 5*time.Second, "receive deadline under chaos: a starved rank fails stop instead of hanging")
	)
	flag.Parse()

	// Ctrl-C cancels the session within one step.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, err := dataset.Load(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)

	var convBackend nn.ConvBackend
	switch *backend {
	case "gemm":
		convBackend = nn.FastPath
	case "naive":
		convBackend = nn.SlowPath
	default:
		log.Fatalf("unknown convolution engine %q", *backend)
	}
	prec, err := nn.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}

	e, err := core.LoadEnsemble(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble: %dx%d ranks on %dx%d grid, strategy %v\n",
		e.Partition.Px, e.Partition.Py, e.Partition.Nx, e.Partition.Ny, e.ModelCfg.Strategy)

	start := *startAt
	if start < 0 {
		start = int(float64(nds.Len()) * *trainFrac)
	}
	if start+*steps >= nds.Len() {
		log.Fatalf("rollout of %d steps from snapshot %d exceeds dataset length %d", *steps, start, nds.Len())
	}

	var nm *mpi.NetModel
	switch *network {
	case "ethernet":
		nm = mpi.ClusterEthernet()
	case "infiniband":
		nm = mpi.ClusterInfiniband()
	case "none":
	default:
		log.Fatalf("unknown network model %q", *network)
	}

	window := e.Window
	if window < 1 {
		window = 1
	}
	if start-window+1 < 0 {
		log.Fatalf("start snapshot %d too early for temporal window %d", start, window)
	}

	mode, err := core.ParseExchangeMode(*exchange)
	if err != nil {
		log.Fatal(err)
	}

	// The serving path: an immutable engine over the ensemble, one
	// streaming session for this rollout. The per-session knobs never
	// touch the shared models, so any number of infer processes'
	// worth of sessions could share one engine.
	engOpts := []core.EngineOption{
		core.WithWorkers(*workers),
		core.WithNetModel(nm),
		core.WithConvBackend(convBackend),
		core.WithPrecision(prec),
		core.WithExchangeMode(mode),
	}
	var chaos *mpi.ChaosPlan
	if *chaosSpec != "" {
		rules, err := mpi.ParseChaosRules(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		chaos = &mpi.ChaosPlan{Seed: *chaosSeed, RecvTimeout: *chaosRecvTO, Rules: rules}
		fmt.Printf("chaos: %d rule(s), seed %d, recv timeout %v\n", len(rules), chaos.Seed, *chaosRecvTO)
	}
	root := true // does this process host rank 0 (score + print)?
	switch *transport {
	case "mem":
		if chaos != nil {
			engOpts = append(engOpts, core.WithChaos(*chaos))
		}
	case "tcp":
		peers := strings.Split(*peersFlag, ",")
		if *peersFlag == "" || len(peers) < 2 {
			log.Fatal("-transport tcp needs -peers with at least two host:port entries (use cmd/mpirun)")
		}
		if *worldSize != 0 && *worldSize != len(peers) {
			log.Fatalf("-world-size %d does not match %d peers", *worldSize, len(peers))
		}
		if len(peers) != e.Partition.Ranks() {
			log.Fatalf("tcp world of %d processes cannot host the checkpoint's %d ranks (one rank per process)",
				len(peers), e.Partition.Ranks())
		}
		tcpOpts := []mpi.Option{mpi.WithNetModel(nm)}
		if chaos != nil {
			tcpOpts = append(tcpOpts, mpi.WithChaos(*chaos))
		}
		world, err := mpi.DialTCP(mpi.TCPConfig{Rank: *tcpRank, Peers: peers}, tcpOpts...)
		if err != nil {
			log.Fatal(err)
		}
		defer world.Close()
		root = *tcpRank == 0
		fmt.Printf("joined tcp world as rank %d of %d (%s exchange)\n", *tcpRank, len(peers), mode)
		engOpts = append(engOpts, core.WithWorld(world))
	default:
		log.Fatalf("unknown transport %q", *transport)
	}
	eng, err := core.NewEngine(e, engOpts...)
	if err != nil {
		log.Fatal(err)
	}
	ses, err := eng.NewSession(ctx, nds.Snapshots[start-window+1:start+1]...)
	if err != nil {
		log.Fatal(err)
	}
	defer ses.Close()

	tbl := stats.NewTable(
		fmt.Sprintf("rollout from snapshot %d (validation region)", start),
		"step", "mape[%]", "mse", "linf", "r2", "halo-msgs")
	var final *tensor.Tensor
	err = ses.Run(ctx, *steps, func(k int, frame *tensor.Tensor) error {
		if frame == nil {
			return nil // a non-root process of a tcp world: compute only
		}
		m := stats.Compute(frame, nds.Snapshots[start+k+1])
		_, halo := ses.LastStepStats()
		tbl.Add(fmt.Sprint(k+1),
			fmt.Sprintf("%.3f", m.MAPE), fmt.Sprintf("%.3e", m.MSE),
			fmt.Sprintf("%.3e", m.Linf), fmt.Sprintf("%.4f", m.R2),
			fmt.Sprint(halo.MessagesSent))
		final = frame // only the last frame is retained
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if root {
		fmt.Print(tbl.String())

		// Per-channel view of the final step (the Fig. 3 comparison).
		per := stats.PerChannel(final, nds.Snapshots[start+*steps])
		ctbl := stats.NewTable("final step per channel", "channel", "mape[%]", "mse", "r2")
		for c, m := range per {
			ctbl.Add(grid.ChannelNames[c], fmt.Sprintf("%.3f", m.MAPE),
				fmt.Sprintf("%.3e", m.MSE), fmt.Sprintf("%.4f", m.R2))
		}
		fmt.Print(ctbl.String())
	}

	comm, halo := ses.CommStats(), ses.HaloCommStats()
	fmt.Printf("communication: %d msgs / %.2f KB total, halo share: %d msgs / %.2f KB",
		comm.MessagesSent, float64(comm.BytesSent)/1e3,
		halo.MessagesSent, float64(halo.BytesSent)/1e3)
	if nm != nil {
		fmt.Printf(", virtual comm time %.4fs", comm.VirtualCommSeconds)
	}
	fmt.Println()
}
