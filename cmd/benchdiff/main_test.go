package main

import "testing"

func file(names ...Benchmark) BenchFile {
	return BenchFile{Go: "go1.24.0", Benchmarks: names}
}

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Metrics: metrics}
}

func regressions(findings []Finding) map[string]string {
	out := map[string]string{}
	for _, f := range findings {
		if f.Regression {
			out[f.Bench+"/"+f.Metric] = f.String()
		}
	}
	return out
}

// TestCompareFlagsSlowedThroughput is the gate's reason to exist: a
// benchmark whose steps_per_s dropped more than the envelope (here an
// artificial 2x slowdown) must be flagged, while one inside the
// envelope must not.
func TestCompareFlagsSlowedThroughput(t *testing.T) {
	baseline := file(
		bench("BenchmarkRollout/mem", map[string]float64{"steps_per_s": 260, "allocs_per_op": 5400}),
		bench("BenchmarkBatcher/max=8", map[string]float64{"requests_per_s": 1000, "allocs_per_op": 100}),
	)
	candidate := file(
		bench("BenchmarkRollout/mem", map[string]float64{"steps_per_s": 130, "allocs_per_op": 5400}), // halved
		bench("BenchmarkBatcher/max=8", map[string]float64{"requests_per_s": 950, "allocs_per_op": 100}),
	)
	findings, _, _ := Compare(baseline, candidate, 15, 10)
	bad := regressions(findings)
	if len(bad) != 1 {
		t.Fatalf("want exactly the slowed benchmark flagged, got %v", bad)
	}
	if _, ok := bad["BenchmarkRollout/mem/steps_per_s"]; !ok {
		t.Fatalf("halved steps_per_s not flagged: %v", bad)
	}
}

// TestCompareFlagsAllocGrowth asserts the deterministic half of the
// gate: allocs_per_op growth past the envelope fails, shrinkage and
// small growth pass.
func TestCompareFlagsAllocGrowth(t *testing.T) {
	baseline := file(
		bench("BenchmarkConv", map[string]float64{"allocs_per_op": 250}),
		bench("BenchmarkLayer", map[string]float64{"allocs_per_op": 40}),
	)
	candidate := file(
		bench("BenchmarkConv", map[string]float64{"allocs_per_op": 300}), // +20%
		bench("BenchmarkLayer", map[string]float64{"allocs_per_op": 42}), // +5%
	)
	findings, _, _ := Compare(baseline, candidate, 15, 10)
	bad := regressions(findings)
	if len(bad) != 1 {
		t.Fatalf("want exactly the alloc-heavy benchmark flagged, got %v", bad)
	}
	if _, ok := bad["BenchmarkConv/allocs_per_op"]; !ok {
		t.Fatalf("+20%% allocs not flagged: %v", bad)
	}
}

// TestCompareCleanRunPasses asserts identical snapshots (and mild
// improvements) produce zero regressions.
func TestCompareCleanRunPasses(t *testing.T) {
	baseline := file(
		bench("BenchmarkRollout", map[string]float64{"steps_per_s": 260, "allocs_per_op": 5400, "ns_per_op": 3e7}),
	)
	candidate := file(
		bench("BenchmarkRollout", map[string]float64{"steps_per_s": 280, "allocs_per_op": 5300, "ns_per_op": 9e7}),
	)
	findings, _, _ := Compare(baseline, candidate, 15, 10)
	if bad := regressions(findings); len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
	// ns_per_op tripled above — wall clock must never gate.
	for _, f := range findings {
		if f.Metric == "ns_per_op" {
			t.Fatalf("wall-clock metric gated: %v", f)
		}
	}
}

// TestCompareZeroAllocBaselineIsAbsolute asserts that a benchmark
// whose baseline records zero allocations is gated on any allocation
// at all — the percentage envelope can't express growth from zero, and
// the zero-alloc steady state is a property worth pinning exactly.
func TestCompareZeroAllocBaselineIsAbsolute(t *testing.T) {
	baseline := file(
		bench("BenchmarkSteadyStateRollout", map[string]float64{"steps_per_s": 300, "allocs_per_op": 0}),
		bench("BenchmarkStillClean", map[string]float64{"allocs_per_op": 0}),
	)
	candidate := file(
		bench("BenchmarkSteadyStateRollout", map[string]float64{"steps_per_s": 300, "allocs_per_op": 1}),
		bench("BenchmarkStillClean", map[string]float64{"allocs_per_op": 0}),
	)
	findings, _, _ := Compare(baseline, candidate, 15, 10)
	bad := regressions(findings)
	if len(bad) != 1 {
		t.Fatalf("want exactly the newly-allocating benchmark flagged, got %v", bad)
	}
	if _, ok := bad["BenchmarkSteadyStateRollout/allocs_per_op"]; !ok {
		t.Fatalf("0 -> 1 allocs not flagged: %v", bad)
	}
}

// TestCompareOneCPUBaselineDowngradesScaling asserts worker-scaling
// throughput drops are warnings, not regressions, when the baseline
// snapshot was captured on a single-CPU host — and stay hard failures
// when the baseline had real parallelism, or when the benchmark isn't
// a scaling variant.
func TestCompareOneCPUBaselineDowngradesScaling(t *testing.T) {
	bs := []Benchmark{
		bench("BenchmarkConvGEMMWorkers/workers=4", map[string]float64{"steps_per_s": 400}),
		bench("BenchmarkRollout/sessions=8", map[string]float64{"steps_per_s": 200}),
		bench("BenchmarkRollout/mem", map[string]float64{"steps_per_s": 260}),
	}
	cs := []Benchmark{
		bench("BenchmarkConvGEMMWorkers/workers=4", map[string]float64{"steps_per_s": 200}), // halved
		bench("BenchmarkRollout/sessions=8", map[string]float64{"steps_per_s": 100}),        // halved
		bench("BenchmarkRollout/mem", map[string]float64{"steps_per_s": 130}),               // halved
	}

	oneCPU := BenchFile{Go: "go1.24.0", CPUs: 1, Benchmarks: bs}
	findings, _, _ := Compare(oneCPU, file(cs...), 15, 10)
	bad := regressions(findings)
	if len(bad) != 1 {
		t.Fatalf("1-cpu baseline: want only the non-scaling drop gated, got %v", bad)
	}
	if _, ok := bad["BenchmarkRollout/mem/steps_per_s"]; !ok {
		t.Fatalf("non-scaling drop not gated: %v", bad)
	}
	warned := 0
	for _, f := range findings {
		if f.Warning {
			warned++
			if !workerScaling(f.Bench) {
				t.Fatalf("non-scaling benchmark downgraded: %v", f)
			}
		}
	}
	if warned != 2 {
		t.Fatalf("want both scaling drops downgraded to warnings, got %d", warned)
	}

	multiCPU := BenchFile{Go: "go1.24.0", CPUs: 8, Benchmarks: bs}
	findings, _, _ = Compare(multiCPU, file(cs...), 15, 10)
	if bad := regressions(findings); len(bad) != 3 {
		t.Fatalf("8-cpu baseline: all three drops must gate, got %v", bad)
	}
}

// TestCompareDisjointSetsWarnNotFail asserts added/removed benchmarks
// surface as warnings (the only* returns), never as regressions.
func TestCompareDisjointSetsWarnNotFail(t *testing.T) {
	baseline := file(bench("BenchmarkOld", map[string]float64{"steps_per_s": 100}))
	candidate := file(bench("BenchmarkNew", map[string]float64{"steps_per_s": 100}))
	findings, onlyBase, onlyCand := Compare(baseline, candidate, 15, 10)
	if len(findings) != 0 {
		t.Fatalf("disjoint sets produced findings: %v", findings)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkOld" {
		t.Fatalf("onlyBase %v", onlyBase)
	}
	if len(onlyCand) != 1 || onlyCand[0] != "BenchmarkNew" {
		t.Fatalf("onlyCand %v", onlyCand)
	}
}
