// Command benchdiff is the CI bench-regression gate: it compares a
// candidate benchmark snapshot (scripts/bench.sh output) against the
// committed BENCH_baseline.json and exits non-zero when throughput
// drops or allocations grow beyond the allowed envelope.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -candidate bench.json
//
// Gates (per benchmark present in both files):
//
//   - throughput (the steps_per_s / requests_per_s metrics) must not
//     drop more than -max-drop-pct (default 15%);
//   - allocs_per_op must not grow more than -max-alloc-growth-pct
//     (default 10%) — allocation counts are deterministic, so this is
//     the noise-free half of the gate. A zero-alloc baseline is gated
//     absolutely: any allocation at all is a regression, since the
//     percentage threshold is meaningless against zero.
//
// Wall-clock metrics (ns_per_op) are reported but never gated: shared
// CI runners make them too noisy for a hard threshold. Benchmarks
// missing from either side and a Go-version mismatch are warnings,
// not failures, so adding or retiring a benchmark doesn't wedge CI.
// When the baseline was captured on a single-CPU host (cpus == 1 in
// the snapshot), throughput drops on worker-/session-scaling variants
// (names containing "workers=" or "sessions=") are downgraded to
// warnings: a 1-CPU baseline encodes no scaling information, so the
// delta measures the host, not the change under review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
)

// BenchFile mirrors the JSON scripts/bench.sh writes.
type BenchFile struct {
	Generated  string      `json:"generated"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	CPUs       int         `json:"cpus"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark line: its name (GOMAXPROCS suffix already
// stripped) and the metric columns keyed by sanitized unit.
type Benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// throughputKeys are the higher-is-better metrics the drop gate
// applies to.
var throughputKeys = []string{"steps_per_s", "requests_per_s"}

// Finding is one gate decision for one metric of one benchmark.
type Finding struct {
	Bench  string
	Metric string
	Base   float64
	Cand   float64
	// DeltaPct is the relative change in percent, signed so that
	// negative is worse for throughput and positive is worse for
	// allocations. +Inf when allocations appear on a zero baseline.
	DeltaPct float64
	// Regression marks findings that breach their gate.
	Regression bool
	// Warning marks findings that would breach their gate but are
	// downgraded because the baseline can't support the comparison —
	// today that is worker-scaling throughput measured against a
	// baseline captured on a single-CPU box, where scaling curves are
	// flat by construction and the delta measures the host, not the
	// code.
	Warning bool
}

func (f Finding) String() string {
	verdict := "ok"
	switch {
	case f.Regression:
		verdict = "REGRESSION"
	case f.Warning:
		verdict = "WARN (1-cpu baseline)"
	}
	return fmt.Sprintf("%-60s %-16s %12.4g -> %-12.4g %+7.2f%%  %s",
		f.Bench, f.Metric, f.Base, f.Cand, f.DeltaPct, verdict)
}

// workerScaling reports whether a benchmark name is a worker- or
// session-scaling variant — the sub-benchmarks whose whole point is
// how throughput changes with parallelism.
func workerScaling(name string) bool {
	return strings.Contains(name, "workers=") || strings.Contains(name, "sessions=")
}

// Compare applies the gates to every benchmark present in both files
// and returns the per-metric findings plus the names only one side
// has (warnings, not failures).
func Compare(baseline, candidate BenchFile, maxDropPct, maxAllocGrowthPct float64) (findings []Finding, onlyBase, onlyCand []string) {
	cand := make(map[string]Benchmark, len(candidate.Benchmarks))
	for _, b := range candidate.Benchmarks {
		cand[b.Name] = b
	}
	seen := make(map[string]bool, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		seen[base.Name] = true
		c, ok := cand[base.Name]
		if !ok {
			onlyBase = append(onlyBase, base.Name)
			continue
		}
		for _, key := range throughputKeys {
			bv, bok := base.Metrics[key]
			cv, cok := c.Metrics[key]
			if !bok || !cok || bv <= 0 {
				continue
			}
			delta := (cv - bv) / bv * 100
			f := Finding{
				Bench: base.Name, Metric: key, Base: bv, Cand: cv,
				DeltaPct: delta, Regression: delta < -maxDropPct,
			}
			// A 1-CPU baseline has nothing to say about scaling
			// behaviour: every workers=N / sessions=N variant collapses
			// onto the serial curve, so a later multi-core (or
			// differently loaded single-core) run comparing against it
			// measures the host. Surface the delta, don't gate on it.
			if f.Regression && baseline.CPUs == 1 && workerScaling(base.Name) {
				f.Regression = false
				f.Warning = true
			}
			findings = append(findings, f)
		}
		if bv, bok := base.Metrics["allocs_per_op"]; bok {
			if cv, cok := c.Metrics["allocs_per_op"]; cok {
				f := Finding{Bench: base.Name, Metric: "allocs_per_op", Base: bv, Cand: cv}
				if bv > 0 {
					f.DeltaPct = (cv - bv) / bv * 100
					f.Regression = f.DeltaPct > maxAllocGrowthPct
				} else if cv > 0 {
					// A zero-alloc baseline is a property, not a
					// quantity: any allocation at all breaks it, so the
					// growth threshold doesn't apply.
					f.DeltaPct = math.Inf(1)
					f.Regression = true
				}
				findings = append(findings, f)
			}
		}
	}
	for _, c := range candidate.Benchmarks {
		if !seen[c.Name] {
			onlyCand = append(onlyCand, c.Name)
		}
	}
	return findings, onlyBase, onlyCand
}

func load(path string) (BenchFile, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
		candPath  = flag.String("candidate", "", "fresh scripts/bench.sh output to gate")
		maxDrop   = flag.Float64("max-drop-pct", 15, "max allowed throughput drop (steps_per_s, requests_per_s)")
		maxAllocs = flag.Float64("max-alloc-growth-pct", 10, "max allowed allocs_per_op growth")
	)
	flag.Parse()
	if *candPath == "" {
		log.Fatal("-candidate is required (a scripts/bench.sh snapshot)")
	}
	baseline, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	candidate, err := load(*candPath)
	if err != nil {
		log.Fatal(err)
	}
	if baseline.Go != "" && candidate.Go != "" && baseline.Go != candidate.Go {
		log.Printf("warning: go version mismatch (baseline %s, candidate %s) — deltas may reflect the toolchain, not the code", baseline.Go, candidate.Go)
	}

	findings, onlyBase, onlyCand := Compare(baseline, candidate, *maxDrop, *maxAllocs)
	bad, warned := 0, 0
	for _, f := range findings {
		fmt.Println(f)
		if f.Regression {
			bad++
		}
		if f.Warning {
			warned++
		}
	}
	if warned > 0 {
		log.Printf("warning: %d worker-scaling throughput drop(s) not gated — the baseline was captured on a 1-CPU host and carries no scaling signal", warned)
	}
	for _, name := range onlyBase {
		log.Printf("warning: %s in baseline only (benchmark removed?)", name)
	}
	for _, name := range onlyCand {
		log.Printf("warning: %s in candidate only (regenerate the baseline to start tracking it)", name)
	}
	if bad > 0 {
		log.Fatalf("%d of %d gated metrics regressed beyond the envelope (throughput drop > %g%% or alloc growth > %g%%)",
			bad, len(findings), *maxDrop, *maxAllocs)
	}
	fmt.Printf("benchdiff: %d gated metrics within the envelope\n", len(findings))
}
