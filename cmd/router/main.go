// Command router is the cluster-serving front end (DESIGN.md §14): it
// spreads /v1 and /v2 traffic across N replica cmd/serve processes —
// least-loaded routing for predict, consistent-hash-by-session for
// streaming rollouts, retry-once on connect failure, rolling
// hot-swaps across the fleet, and warm standby replicas.
//
// Usage:
//
//	router -addr 127.0.0.1:8090 \
//	    -replica r1=http://127.0.0.1:8081 \
//	    -replica r2=http://127.0.0.1:8082 \
//	    -replica r3=http://127.0.0.1:8083 \
//	    -standby r4=http://127.0.0.1:8084
//
// Each replica is an independent cmd/serve process (typically booted
// from the same model artifact directory; give each a distinct
// -replica id so its healthz names itself). Standby replicas are
// pre-loaded the same way — usually from the artifact dir of the
// version currently deployed — but receive no traffic until promoted.
//
// Endpoints:
//
//	GET  /healthz           fleet health: per-replica state (ready |
//	                        degraded | down), version, in-flight load
//	GET  /metrics           router counters: requests, retries, failed
//	                        requests, swaps, per-replica state/load
//	POST /v2/admin/swap     {"name","version","dir"}: rolling hot-swap —
//	                        drives each replica's zero-downtime swap in
//	                        sequence, waiting for its healthz to report
//	                        the new version before the next; aborts if
//	                        a replica never converges
//	POST /v2/admin/promote  {"name":"r4"}: move a warm standby into the
//	                        routed set
//	GET|POST /v2/admin/policy  with -policy: read / hot-reload the edge
//	                        admission policy (DESIGN.md §15); SIGHUP
//	                        re-reads the -policy file
//	everything else         proxied to a replica (predict, rollout,
//	                        /v2/models, the /v1 surface)
//
// With -policy the router runs edge admission control ahead of
// routing (DESIGN.md §15): CIDR allow/deny via a longest-prefix-match
// trie, per-client token buckets, and priority load shedding, with
// typed 403/429/503 envelopes and repro_admission_* metrics. The
// router overwrites X-Forwarded-For with the connection's remote
// address, so replicas behind it may trust the header via
// -policy-xff. Without -policy admission is fully off.
//
// A request that dies on a replica before any response byte is
// replayed once on another replica and the dead replica is marked
// down — `make smoke-cluster` kill -9s a replica under sustained load
// and asserts zero failed client requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/router"
)

// setupAdmission wraps the router in the edge admission Gate
// (DESIGN.md §15) when -policy names a policy file — fleet-edge
// admission, protecting every replica behind this router — and
// arranges SIGHUP hot reloads. Mirrors cmd/serve's replica-side
// wiring.
func setupAdmission(handler http.Handler, policyPath string, accessLog *log.Logger) (http.Handler, error) {
	if policyPath == "" {
		return handler, nil
	}
	pol, err := admission.LoadPolicyFile(policyPath)
	if err != nil {
		return nil, err
	}
	gate, err := admission.New(handler, pol, admission.Config{AccessLog: accessLog})
	if err != nil {
		return nil, err
	}
	fmt.Printf("admission: policy %s (classes %s); reload via SIGHUP or POST %s\n",
		policyPath, strings.Join(gate.Classes(), ","), admission.PolicyAdminPath)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			pol, err := admission.LoadPolicyFile(policyPath)
			if err != nil {
				log.Printf("admission: SIGHUP reload: %v", err)
				continue
			}
			if err := gate.SetPolicy(pol); err != nil {
				log.Printf("admission: SIGHUP reload: %v", err)
				continue
			}
			log.Printf("admission: policy reloaded from %s (reload #%d)", policyPath, gate.Reloads())
		}
	}()
	return gate, nil
}

// specList collects repeated -replica / -standby id=url flags.
type specList []router.ReplicaSpec

func (l *specList) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = s.ID + "=" + s.URL
	}
	return strings.Join(parts, ",")
}

func (l *specList) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*l = append(*l, router.ReplicaSpec{ID: id, URL: url})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("router: ")

	var replicas, standbys specList
	var (
		addr          = flag.String("addr", "127.0.0.1:8090", "listen address (port 0 = pick a free port)")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "healthy re-probe period (failed probes back off exponentially)")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe healthz timeout")
		backoffMax    = flag.Duration("backoff-max", 5*time.Second, "cap on the failed-probe backoff")
		swapTimeout   = flag.Duration("swap-timeout", 60*time.Second, "per-replica healthz-convergence timeout during a rolling swap")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		accessLog     = flag.Bool("access-log", false, "log one line per routed request (method, path, status, replica, retries, request ID) to stderr")
		policyPath    = flag.String("policy", "", "admission policy file (DESIGN.md §15) enforced at the fleet edge, ahead of replica picking; empty = admission off")
	)
	flag.Var(&replicas, "replica", "routed replica as id=url (repeatable)")
	flag.Var(&standbys, "standby", "warm standby replica as id=url (repeatable): registered and health-probed but unrouted until POST /v2/admin/promote")
	flag.Parse()
	if len(replicas) == 0 {
		log.Fatal("at least one -replica id=url is required")
	}

	cfg := router.Config{
		Replicas:        replicas,
		Standbys:        standbys,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		ProbeBackoffMax: *backoffMax,
		SwapTimeout:     *swapTimeout,
	}
	if *accessLog {
		cfg.AccessLog = log.New(os.Stderr, "access: ", 0)
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fleet := rt.Fleet()
	for _, rep := range fleet.Replicas {
		role := "replica"
		if rep.Standby {
			role = "standby"
		}
		fmt.Printf("%s %s at %s: %s (version %q)\n", role, rep.ID, rep.URL, rep.State, rep.Version)
	}

	handler, err := setupAdmission(rt, *policyPath, cfg.AccessLog)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: handler}
	fmt.Printf("routing on %s (%d/%d replicas ready)\n", ln.Addr(), fleet.Ready, fleet.Total)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("draining…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v (force-closing remaining connections)", err)
		_ = hs.Close()
	}
	rt.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	stats := rt.Stats()
	fmt.Printf("routed %d requests (%d retried, %d failed), %d rolling swaps\n",
		stats.Requests, stats.Retries, stats.Failed, stats.Swaps)
}
