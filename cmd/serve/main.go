// Command serve exposes trained models over HTTP: one-step prediction
// behind per-model micro-batching request coalescers (core.Batcher),
// streaming rollout sessions, and the /v2 multi-model registry
// surface with zero-downtime hot swap (DESIGN.md §9–§10).
//
// Usage:
//
//	serve -ckpt ckpt -addr 127.0.0.1:8080 -max-batch 8 -max-delay 2ms
//	serve -ckpt ckpt -model prod          # publish under an explicit name
//
// Endpoints:
//
//	GET  /healthz                       per-model readiness + registry state (JSON)
//	GET  /metrics                       per-model request/batch counters, swap count
//	POST /v1/predict                    one-step prediction on the default model;
//	                                    body {"states":[{"shape":[c,h,w],"data":[...]}]}
//	                                    (or gob with Content-Type application/x-gob);
//	                                    concurrent requests are coalesced into micro-batches
//	POST /v1/rollout?steps=N            streaming rollout from the POSTed history
//	                                    (one JSON frame per chunk)
//	GET  /v1/rollout?steps=N            the same, from the -init dataset's opening history
//	GET  /v2/models                     list published models
//	POST /v2/models/{name}/predict      per-model predict (v1 wire format)
//	GET|POST /v2/models/{name}/rollout  per-model rollout (v1 wire format)
//	POST /v2/admin/load                 {"name","version","dir"}: publish another model
//	POST /v2/admin/swap                 {"name","version","dir"}: hot-swap a live model —
//	                                    new requests route to the new version immediately,
//	                                    in-flight ones drain on the old
//	POST /v2/admin/unload               {"name"}: retire a model
//	GET|POST /v2/admin/policy           read / hot-reload the admission policy
//	                                    (only with -policy; the POST body is the
//	                                    whole policy JSON document)
//
// With -policy FILE the whole surface sits behind the edge admission
// gate (DESIGN.md §15): CIDR allow/deny/class rules via a
// longest-prefix-match trie, per-client token buckets (429
// rate_limited + Retry-After), and priority-class load shedding
// against a concurrency budget (503 overloaded, lowest class first).
// SIGHUP re-reads the file and swaps the compiled policy atomically;
// /healthz, /metrics and /v2/admin/* stay exempt so probes and the
// un-wedging reload always get through. Without -policy nothing
// changes: admission is fully off by default.
//
// The checkpoint directory may be a versioned model artifact
// (manifest.json + digest-checked payloads, written by cmd/train) or
// a legacy directory of bare rank<N>.gob files; the model's name and
// version default to the manifest's (override with -model/-version).
//
// -addr with port 0 picks a free port; the chosen address is printed
// as "serving on host:port" once the listener is up, which is what
// scripts/smoke_serve.sh, scripts/smoke_swap.sh and
// scripts/loadtest.sh wait for.
//
// On SIGTERM/SIGINT the server drains gracefully: the listener stops
// accepting, in-flight requests (including open rollout streams) get
// -drain-timeout to finish, and every model's batcher flushes its
// queued predictions before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// setupAdmission wraps handler in the edge admission Gate (DESIGN.md
// §15) when -policy names a policy file, and arranges SIGHUP to
// re-read that file and hot-swap the compiled table (the other reload
// path, POST /v2/admin/policy, is served by the Gate itself). Shared
// verbatim in spirit with cmd/router — both front doors admit the
// same way.
func setupAdmission(handler http.Handler, policyPath string, trustXFF bool, accessLog *log.Logger) (http.Handler, error) {
	if policyPath == "" {
		return handler, nil
	}
	pol, err := admission.LoadPolicyFile(policyPath)
	if err != nil {
		return nil, err
	}
	gate, err := admission.New(handler, pol, admission.Config{
		TrustForwardedFor: trustXFF,
		AccessLog:         accessLog,
	})
	if err != nil {
		return nil, err
	}
	tabClasses := strings.Join(gate.Classes(), ",")
	fmt.Printf("admission: policy %s (classes %s); reload via SIGHUP or POST %s\n",
		policyPath, tabClasses, admission.PolicyAdminPath)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			pol, err := admission.LoadPolicyFile(policyPath)
			if err != nil {
				log.Printf("admission: SIGHUP reload: %v", err)
				continue
			}
			if err := gate.SetPolicy(pol); err != nil {
				log.Printf("admission: SIGHUP reload: %v", err)
				continue
			}
			log.Printf("admission: policy reloaded from %s (reload #%d)", policyPath, gate.Reloads())
		}
	}()
	return gate, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = pick a free port)")
		ckptDir      = flag.String("ckpt", "ckpt", "model artifact (or legacy checkpoint) directory from cmd/train")
		modelName    = flag.String("model", "", "name to publish the boot model under (default: the artifact manifest's name, or \"default\")")
		modelVersion = flag.String("version", "", "version label for the boot model (default: the manifest's)")
		initPath     = flag.String("init", "", "dataset (.gob) whose opening snapshots seed GET rollouts")
		replicaID    = flag.String("replica", "", "fleet identity reported in /healthz when this process runs behind cmd/router")
		workers      = flag.Int("workers", 0, "serving parallelism: ranks fan out per micro-batch and convolution kernels tile-parallelize (0 = single-threaded; results are bit-identical for any value)")
		backend      = flag.String("conv", "gemm", "convolution engine: gemm | naive")
		precision    = flag.String("precision", "f64", "serving compute precision: f64 (reference, bit-reproducible) | f32 (faster, within documented error budget)")
		exchange     = flag.String("exchange", "blocking", "halo exchange schedule for rollout sessions: blocking | overlap")
		maxBatch     = flag.Int("max-batch", 8, "micro-batch size cap for predict coalescing (per model)")
		maxDelay     = flag.Duration("max-delay", 2*time.Millisecond, "max wait for predict batchmates before dispatching a partial batch")
		maxSteps     = flag.Int("max-steps", 10000, "cap on the rollout steps query parameter")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		accessLog    = flag.Bool("access-log", false, "log one line per request (method, path, status, duration, request ID) plus rollout comm summaries to stderr")
		policyPath   = flag.String("policy", "", "admission policy file (DESIGN.md §15): CIDR allow/deny/class rules, per-client rate limits, priority shed queues; empty = admission off")
		policyXFF    = flag.Bool("policy-xff", false, "trust the first X-Forwarded-For entry as the client address (enable ONLY behind cmd/router or another header-overwriting proxy)")
		chaosSpec    = flag.String("chaos", "", "fault-injection rules for session worlds, e.g. 'delay:*>*:d=2ms:p=0.5,drop:1>0:p=0.3' (kinds: delay|jitter|drop|dup|partition; testing only)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos fault schedule")
		chaosRecvTO  = flag.Duration("chaos-recv-timeout", 5*time.Second, "receive deadline under chaos: a starved rank fails stop instead of hanging")
	)
	flag.Parse()

	var convBackend nn.ConvBackend
	switch *backend {
	case "gemm":
		convBackend = nn.FastPath
	case "naive":
		convBackend = nn.SlowPath
	default:
		log.Fatalf("unknown convolution engine %q", *backend)
	}
	prec, err := nn.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := core.ParseExchangeMode(*exchange)
	if err != nil {
		log.Fatal(err)
	}

	e, man, err := core.OpenModel(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	name, version := serve.ArtifactIdentity(man, serve.DefaultModelName, *modelName, *modelVersion)
	fmt.Printf("model %s@%s: %dx%d ranks on %dx%d grid, strategy %v, window %d\n",
		name, version, e.Partition.Px, e.Partition.Py, e.Partition.Nx, e.Partition.Ny,
		e.ModelCfg.Strategy, max(e.Window, 1))

	engOpts := []core.EngineOption{
		core.WithConvBackend(convBackend),
		core.WithPrecision(prec),
		core.WithExchangeMode(mode),
	}
	if *workers > 0 {
		engOpts = append(engOpts, core.WithWorkers(*workers))
	}
	if *chaosSpec != "" {
		rules, err := mpi.ParseChaosRules(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		plan := mpi.ChaosPlan{Seed: *chaosSeed, RecvTimeout: *chaosRecvTO, Rules: rules}
		engOpts = append(engOpts, core.WithChaos(plan))
		fmt.Printf("chaos: %d rule(s), seed %d, recv timeout %v\n", len(rules), plan.Seed, *chaosRecvTO)
	}
	eng, err := core.NewEngine(e, engOpts...)
	if err != nil {
		log.Fatal(err)
	}

	cfg := serve.Config{
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
		MaxRolloutSteps: *maxSteps,
		DefaultModel:    name,
		Replica:         *replicaID,
		EngineOptions:   engOpts,
	}
	if *accessLog {
		cfg.AccessLog = log.New(os.Stderr, "access: ", 0)
	}
	if *initPath != "" {
		ds, err := dataset.Load(*initPath)
		if err != nil {
			log.Fatal(err)
		}
		norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		nds := dataset.NormalizeDataset(ds, norm)
		window := max(e.Window, 1)
		if nds.Len() < window {
			log.Fatalf("-init dataset has %d snapshots, temporal window needs %d", nds.Len(), window)
		}
		cfg.Initials = append([]*tensor.Tensor(nil), nds.Snapshots[:window]...)
	}
	srv, err := serve.NewMulti(nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.LoadEngine(name, version, eng); err != nil {
		log.Fatal(err)
	}

	handler, err := setupAdmission(srv, *policyPath, *policyXFF, cfg.AccessLog)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: handler}
	fmt.Printf("serving on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight handlers finish,
	// then flush every model's batcher queue and drain the registry.
	// Healthz flips to "draining" first so a router stops picking this
	// replica while the listener winds down.
	srv.SetDraining()
	fmt.Println("draining…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// The grace period expired with streams still open. Force-close
		// the remaining connections so their request contexts cancel
		// (sessions stop within one step) — otherwise srv.Close would
		// wait on them indefinitely.
		log.Printf("shutdown: %v (force-closing remaining connections)", err)
		_ = hs.Close()
	}
	stats := srv.Stats() // snapshot before Close tears the models down
	if err := srv.Close(); err != nil {
		log.Printf("registry drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Printf("served %d predictions in %d micro-batches (mean fill %.2f), %d swaps\n",
		stats.Requests, stats.Batches, stats.MeanFill(), srv.Registry().Swaps())
}
