// Command serve exposes a trained ensemble over HTTP: one-step
// prediction behind the micro-batching request coalescer
// (core.Batcher) and streaming rollout sessions, the serving topology
// DESIGN.md §9 describes.
//
// Usage:
//
//	serve -ckpt ckpt -addr 127.0.0.1:8080 -max-batch 8 -max-delay 2ms
//
// Endpoints:
//
//	GET  /healthz              liveness probe
//	POST /v1/predict           one-step prediction; body {"states":[{"shape":[c,h,w],"data":[...]}]}
//	                           (or gob with Content-Type application/x-gob);
//	                           concurrent requests are coalesced into micro-batches
//	POST /v1/rollout?steps=N   streaming rollout from the POSTed history
//	                           (one JSON frame per chunk)
//	GET  /v1/rollout?steps=N   the same, from the -init dataset's opening history
//
// -addr with port 0 picks a free port; the chosen address is printed
// as "serving on host:port" once the listener is up, which is what
// scripts/smoke_serve.sh and scripts/loadtest.sh wait for.
//
// On SIGTERM/SIGINT the server drains gracefully: the listener stops
// accepting, in-flight requests (including open rollout streams) get
// -drain-timeout to finish, and the batcher flushes every queued
// prediction before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = pick a free port)")
		ckptDir      = flag.String("ckpt", "ckpt", "checkpoint directory from cmd/train")
		initPath     = flag.String("init", "", "dataset (.gob) whose opening snapshots seed GET /v1/rollout")
		workers      = flag.Int("workers", 0, "serving parallelism: ranks fan out per micro-batch and convolution kernels tile-parallelize (0 = single-threaded; results are bit-identical for any value)")
		backend      = flag.String("conv", "gemm", "convolution engine: gemm | naive")
		exchange     = flag.String("exchange", "blocking", "halo exchange schedule for rollout sessions: blocking | overlap")
		maxBatch     = flag.Int("max-batch", 8, "micro-batch size cap for /v1/predict coalescing")
		maxDelay     = flag.Duration("max-delay", 2*time.Millisecond, "max wait for predict batchmates before dispatching a partial batch")
		maxSteps     = flag.Int("max-steps", 10000, "cap on the rollout steps query parameter")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	)
	flag.Parse()

	var convBackend nn.ConvBackend
	switch *backend {
	case "gemm":
		convBackend = nn.FastPath
	case "naive":
		convBackend = nn.SlowPath
	default:
		log.Fatalf("unknown convolution engine %q", *backend)
	}
	mode, err := core.ParseExchangeMode(*exchange)
	if err != nil {
		log.Fatal(err)
	}

	e, err := core.LoadEnsemble(*ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble: %dx%d ranks on %dx%d grid, strategy %v, window %d\n",
		e.Partition.Px, e.Partition.Py, e.Partition.Nx, e.Partition.Ny, e.ModelCfg.Strategy, max(e.Window, 1))

	engOpts := []core.EngineOption{
		core.WithConvBackend(convBackend),
		core.WithExchangeMode(mode),
	}
	if *workers > 0 {
		engOpts = append(engOpts, core.WithWorkers(*workers))
	}
	eng, err := core.NewEngine(e, engOpts...)
	if err != nil {
		log.Fatal(err)
	}

	cfg := serve.Config{
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
		MaxRolloutSteps: *maxSteps,
	}
	if *initPath != "" {
		ds, err := dataset.Load(*initPath)
		if err != nil {
			log.Fatal(err)
		}
		norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		nds := dataset.NormalizeDataset(ds, norm)
		window := max(e.Window, 1)
		if nds.Len() < window {
			log.Fatalf("-init dataset has %d snapshots, temporal window needs %d", nds.Len(), window)
		}
		cfg.Initials = append([]*tensor.Tensor(nil), nds.Snapshots[:window]...)
	}
	srv, err := serve.New(eng, cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	fmt.Printf("serving on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight handlers finish,
	// then flush the batcher's queue.
	fmt.Println("draining…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("batcher drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	s := srv.Batcher().Stats()
	fmt.Printf("served %d predictions in %d micro-batches (mean fill %.2f)\n",
		s.Requests, s.Batches, s.MeanFill())
}
