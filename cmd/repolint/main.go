// Command repolint is the repository's static-analysis multichecker:
// it compiles the internal/analysis suite — errwrap, ctxflow,
// goroutinelife, detpath, closecheck (DESIGN.md §12) — into one
// binary, usable two ways:
//
// Standalone, over package patterns (the `make lint` and CI form):
//
//	go run ./cmd/repolint ./...
//
// exits 0 when the tree is clean and 1 with file:line:col findings
// otherwise. And as a vet tool, which also covers test files of the
// analyzed packages:
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// A finding is suppressed by annotating the offending line (or the
// line below a comment-only line) with
//
//	//repolint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The clean-tree invariant is also asserted by the tier-1 test
// TestRepoTreeIsClean, so `go test ./...` fails before CI does.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	// Vet-protocol invocations (-V=full, -flags, pkg.cfg) exit inside
	// VetToolMain; everything else is the standalone multichecker.
	analysis.VetToolMain(os.Args[1:], analysis.All())

	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-list] [packages]\n\nRuns the repo's invariant analyzers (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunPackage(pkg, analysis.All()) {
			fmt.Println(d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
