package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// buildRepolint compiles the multichecker once per test binary.
func buildRepolint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repolint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// seedModule writes a throwaway module containing one detpath
// violation in a package whose import path ends in internal/tensor,
// so the analyzer's Match scoping is exercised end to end.
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seedtest\n\ngo 1.24\n",
		filepath.Join("internal", "tensor", "bad.go"): `package tensor

import "math/rand"

// jitter uses the global RNG: exactly what detpath forbids here.
func jitter() float64 { return rand.Float64() }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("command did not run: %v", err)
	return -1
}

// TestStandaloneCleanTree: the real repo must come back clean with
// exit status 0 — the same invariant TestRepoTreeIsClean asserts
// in-process, here through the shipped binary.
func TestStandaloneCleanTree(t *testing.T) {
	bin := buildRepolint(t)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("repolint ./... on the real tree: exit %d\n%s", code, out)
	}
}

// TestStandaloneSeededViolation: a planted violation must flip the
// exit status to 1 and name the analyzer — this is what makes the CI
// lint job blocking rather than advisory.
func TestStandaloneSeededViolation(t *testing.T) {
	bin := buildRepolint(t)
	dir := seedModule(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("repolint on seeded module: exit %d, want 1\n%s", code, out)
	}
	s := string(out)
	if !strings.Contains(s, "global math/rand RNG") || !strings.Contains(s, "(detpath)") {
		t.Fatalf("seeded detpath violation not reported:\n%s", s)
	}
}

// TestVetToolSeededViolation drives the binary through the go vet
// -vettool protocol (-V=full / -flags / pkg.cfg) against the seeded
// module and expects the same diagnostic.
func TestVetToolSeededViolation(t *testing.T) {
	bin := buildRepolint(t)
	dir := seedModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on seeded module succeeded, want failure\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "global math/rand RNG") {
		t.Fatalf("vettool run did not report the seeded violation:\n%s", s)
	}
}

// TestListFlag keeps the -list inventory in sync with the suite.
func TestListFlag(t *testing.T) {
	bin := buildRepolint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("repolint -list: %v\n%s", err, out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(string(out), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out)
		}
	}
}
