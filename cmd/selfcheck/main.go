// Command selfcheck verifies the numerical foundations of the library
// on the current machine in a few seconds: the PDE solver against an
// exact analytic solution, the convolution backward pass against an
// independent autodiff oracle, the message-passing collectives against
// serial reference results, and the decomposition's exact tiling.
// It exits non-zero if any check fails.
//
// Usage:
//
//	selfcheck
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/autodiff"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/euler"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

type check struct {
	name string
	run  func() error
}

func main() {
	checks := []check{
		{"euler solver vs analytic standing wave", checkSolverAnalytic},
		{"conv backward vs autodiff oracle", checkConvGradients},
		{"mpi collectives vs serial reference", checkCollectives},
		{"domain decomposition tiles exactly", checkDecomposition},
		{"training-stack determinism", checkDeterminism},
		{"serving engine: concurrent sessions identical", checkServingEngine},
	}
	failed := 0
	for _, c := range checks {
		if err := c.run(); err != nil {
			fmt.Printf("FAIL  %-40s %v\n", c.name, err)
			failed++
		} else {
			fmt.Printf("ok    %s\n", c.name)
		}
	}
	if failed > 0 {
		fmt.Printf("%d check(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

func checkSolverAnalytic() error {
	cfg := euler.DefaultConfig(64)
	cfg.Boundary = euler.Periodic
	cfg.Dissipation = 0
	cfg.CFL = 0.2
	s, err := euler.NewSolver(cfg)
	if err != nil {
		return err
	}
	s.SetStandingWaveIC(1, 1)
	for s.Time < 0.4 {
		s.Step()
	}
	exact := euler.StandingWavePressure(cfg, 1, 1, s.Time)
	maxErr := 0.0
	for i, v := range s.State.P {
		if e := math.Abs(v - exact[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.01*cfg.Amplitude {
		return fmt.Errorf("max error %g exceeds 1%% of amplitude", maxErr)
	}
	return nil
}

func checkConvGradients() error {
	const cin, cout, k, h, w = 2, 2, 3, 4, 5
	g := tensor.NewRNG(99)
	conv := nn.NewConv2D("c", g, cin, cout, k, 0)
	x := tensor.Normal(g, 0, 1, 1, cin, h, w)

	y := conv.Forward(x)
	nn.ZeroGrads(conv)
	dx := conv.Backward(y.Clone())

	tp := autodiff.NewTape()
	xv := make([]autodiff.Var, x.Size())
	for i, v := range x.Data() {
		xv[i] = tp.Value(v)
	}
	wt := conv.Weight().Value
	wv := make([]autodiff.Var, wt.Size())
	for i, v := range wt.Data() {
		wv[i] = tp.Value(v)
	}
	bv := make([]autodiff.Var, cout)
	for i, v := range conv.Bias().Value.Data() {
		bv[i] = tp.Value(v)
	}
	oh, ow := h-k+1, w-k+1
	var terms []autodiff.Var
	for co := 0; co < cout; co++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bv[co]
				for ci := 0; ci < cin; ci++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							xi := (ci*h+(oy+ky))*w + (ox + kx)
							wi := ((co*cin+ci)*k+ky)*k + kx
							acc = acc.Add(xv[xi].Mul(wv[wi]))
						}
					}
				}
				terms = append(terms, acc.Square().MulConst(0.5))
			}
		}
	}
	grads := tp.Gradients(autodiff.Sum(terms))
	for i := range xv {
		want := grads[xv[i].Index()]
		if got := dx.Data()[i]; math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			return fmt.Errorf("input gradient %d: %g vs oracle %g", i, got, want)
		}
	}
	for i := range wv {
		want := grads[wv[i].Index()]
		if got := conv.Weight().Grad.Data()[i]; math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			return fmt.Errorf("weight gradient %d: %g vs oracle %g", i, got, want)
		}
	}
	return nil
}

func checkCollectives() error {
	const p, n = 6, 10
	want := make([]float64, n)
	for r := 0; r < p; r++ {
		for i := 0; i < n; i++ {
			want[i] += float64(r*n + i)
		}
	}
	var bad error
	w := mpi.NewWorld(p)
	err := w.Run(func(c *mpi.Comm) {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank()*n + i)
		}
		tree := c.Allreduce(data, mpi.OpSum)
		ring := c.RingAllreduce(data, mpi.OpSum)
		for i := 0; i < n; i++ {
			if math.Abs(tree[i]-want[i]) > 1e-9 || math.Abs(ring[i]-want[i]) > 1e-9 {
				bad = fmt.Errorf("allreduce mismatch at %d", i)
			}
		}
	})
	if err != nil {
		return err
	}
	return bad
}

func checkDecomposition() error {
	for _, pcount := range []int{1, 4, 6, 9, 16} {
		px, py := mpi.BalancedDims(pcount)
		part, err := decomp.NewPartition(48, 48, px, py)
		if err != nil {
			return err
		}
		owned := make([]int, 48*48)
		for r := 0; r < part.Ranks(); r++ {
			b := part.BlockOfRank(r)
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					owned[j*48+i]++
				}
			}
		}
		for k, c := range owned {
			if c != 1 {
				return fmt.Errorf("P=%d: point %d owned %d times", pcount, k, c)
			}
		}
	}
	return nil
}

// checkServingEngine trains a tiny 2x2 neighbour-pad ensemble, builds
// an independent autoregressive reference by iterating Engine.Predict
// (whose halos come from direct slicing of each gathered full-domain
// frame — no message passing), then runs two concurrent Engine
// sessions (whose halos travel through the two-phase point-to-point
// exchange) and demands that every session frame matches the
// reference and that the two sessions agree bit for bit — the serving
// API's core contract (sessions share only immutable weights), checked
// against a genuinely different data path.
func checkServingEngine() error {
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(16), NumSnapshots: 5})
	if err != nil {
		return err
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		return err
	}
	nds := dataset.NormalizeDataset(ds, norm)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 4
	cfg.Model.Strategy = model.NeighborPad // real halo traffic in sessions
	trainer, err := core.NewTrainer(cfg, core.WithTopology(2, 2))
	if err != nil {
		return err
	}
	ctx := context.Background()
	rep, err := trainer.Train(ctx, nds)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(rep.Ensemble())
	if err != nil {
		return err
	}
	const steps = 3
	ref := make([]*tensor.Tensor, steps)
	state := nds.Snapshots[0]
	for k := 0; k < steps; k++ {
		if state, err = eng.Predict(ctx, state); err != nil {
			return err
		}
		ref[k] = state
	}
	const sessions = 2
	frames := make([][]*tensor.Tensor, sessions)
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := range errs {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ses, err := eng.NewSession(ctx, nds.Snapshots[0])
			if err != nil {
				errs[s] = err
				return
			}
			defer ses.Close()
			frames[s] = make([]*tensor.Tensor, steps)
			errs[s] = ses.Run(ctx, steps, func(k int, frame *tensor.Tensor) error {
				frames[s][k] = frame
				if !frame.AllClose(ref[k], 1e-12) {
					return fmt.Errorf("session %d step %d differs from the direct-slicing reference (max diff %g)",
						s, k, frame.Sub(ref[k]).AbsMax())
				}
				return nil
			})
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for k := 0; k < steps; k++ {
		if !frames[0][k].Equal(frames[1][k]) {
			return fmt.Errorf("concurrent sessions disagree at step %d", k)
		}
	}
	return nil
}

func checkDeterminism() error {
	g1 := tensor.Uniform(tensor.NewRNG(7), 0, 1, 100)
	g2 := tensor.Uniform(tensor.NewRNG(7), 0, 1, 100)
	if !g1.Equal(g2) {
		return fmt.Errorf("seeded RNG not deterministic")
	}
	a := nn.NewConv2D("c", tensor.NewRNG(3), 2, 2, 3, 1)
	b := nn.NewConv2D("c", tensor.NewRNG(3), 2, 2, 3, 1)
	if !a.Weight().Value.Equal(b.Weight().Value) {
		return fmt.Errorf("layer initialization not deterministic")
	}
	return nil
}
