#!/usr/bin/env bash
# End-to-end smoke of zero-downtime hot swap (make smoke-swap, CI job
# smoke-swap): train two different models → serve the first → drive
# sustained concurrent /v2 predict load → hot-swap to the second model
# MID-LOAD → assert:
#
#   1. the artifact manifests verify (inspect -ckpt);
#   2. zero failed requests across the whole run — a swap is invisible
#      to in-flight and queued traffic;
#   3. every response bit-matches exactly one of the two versions
#      (never a mix), and post-swap traffic serves the NEW model
#      (bit-identical to the new artifact served standalone);
#   4. /healthz reports the new version, /metrics counts the swap;
#   5. SIGTERM still drains gracefully.
#
# Run from anywhere: scripts/smoke_swap.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=smoke-swap-out
SERVE_PID=""
LOAD_PIDS=()
cleanup() {
	touch "$OUT/stop" 2>/dev/null || true
	for p in "${LOAD_PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$OUT"
}
trap cleanup EXIT
rm -rf "$OUT" && mkdir -p "$OUT"

go build -o "$OUT/serve" ./cmd/serve
go run ./cmd/datagen -n 24 -snapshots 30 -out "$OUT/data.gob"
# Two genuinely different models: same architecture, different seeds.
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -seed 1 \
	-out "$OUT/ckptA" -model-name demo -model-version vA
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -seed 2 \
	-out "$OUT/ckptB" -model-name demo -model-version vB

# 1. The artifacts carry verifying manifests. (Write to a file first:
# grep -q would close the pipe early and trip pipefail via SIGPIPE.)
go run ./cmd/inspect -ckpt "$OUT/ckptA" >"$OUT/inspectA.txt"
grep -q "all payload digests verified" "$OUT/inspectA.txt"
go run ./cmd/inspect -ckpt "$OUT/ckptB" >"$OUT/inspectB.txt"
grep -q "all payload digests verified" "$OUT/inspectB.txt"
echo "smoke-swap: artifact digests verified"

"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckptA" -init "$OUT/data.gob" \
	-max-batch 4 -max-delay 1ms >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
	ADDR=$(awk '/^serving on /{print $3; exit}' "$OUT/serve.log")
	[ -n "$ADDR" ] && break
	kill -0 "$SERVE_PID" 2>/dev/null || { echo "server died:"; cat "$OUT/serve.log"; exit 1; }
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "server did not come up:"; cat "$OUT/serve.log"; exit 1; }
BASE="http://$ADDR"
echo "smoke-swap: server at $BASE (model demo@vA)"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'
curl -fsS "$BASE/healthz" | grep -q '"version":"vA"'

# Build the predict request from the model's own first rollout frame.
curl -fsS "$BASE/v2/models/demo/rollout?steps=1" >"$OUT/frame.ndjson"
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
f = json.loads(open(out + "/frame.ndjson").readline())
assert not f.get("error"), f
json.dump({"states": [f["frame"]]}, open(out + "/req.json", "w"))
EOF

# Golden outputs per version: vA is live; vB is loaded side by side
# under its own name (same registry, zero interference with demo).
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$BASE/v2/models/demo/predict" >"$OUT/goldenA.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary '{"name":"goldenb","dir":"'"$OUT"'/ckptB"}' "$BASE/v2/admin/load" \
	| grep -q '"name":"goldenb"'
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$BASE/v2/models/goldenb/predict" >"$OUT/goldenB.json"
curl -fsS "$BASE/v2/models" | grep -q '"goldenb"'

# 2. Sustained concurrent load against demo.
WORKERS=4
for i in $(seq 1 "$WORKERS"); do
	(
		n=0
		while [ ! -f "$OUT/stop" ]; do
			code=$(curl -s -o "$OUT/load_${i}_${n}.json" -w '%{http_code}' \
				-X POST -H 'Content-Type: application/json' \
				--data-binary @"$OUT/req.json" "$BASE/v2/models/demo/predict" || echo 000)
			echo "$code" >>"$OUT/codes_$i"
			n=$((n + 1))
		done
	) &
	LOAD_PIDS+=("$!")
done

sleep 1 # traffic against vA
# 3. Hot-swap demo to vB mid-load.
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary '{"name":"demo","dir":"'"$OUT"'/ckptB"}' "$BASE/v2/admin/swap" \
	| grep -q '"version":"vB"'
echo "smoke-swap: swapped demo to vB under load"
sleep 1 # traffic against vB

touch "$OUT/stop"
wait "${LOAD_PIDS[@]}"
LOAD_PIDS=()

# Post-swap, a fresh predict must serve the NEW model bit for bit.
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$BASE/v2/models/demo/predict" >"$OUT/post_swap.json"

python3 - "$OUT" <<'EOF'
import glob, json, sys
out = sys.argv[1]
codes = []
for f in glob.glob(out + "/codes_*"):
    codes += [l.strip() for l in open(f) if l.strip()]
assert codes, "load generator produced no requests"
bad = [c for c in codes if c != "200"]
assert not bad, f"{len(bad)} of {len(codes)} requests failed during the swap: {bad[:10]}"
ga = json.load(open(out + "/goldenA.json"))
gb = json.load(open(out + "/goldenB.json"))
assert ga["data"] != gb["data"], "the two model versions predict identically; smoke proves nothing"
n_a = n_b = 0
for path in glob.glob(out + "/load_*.json"):
    try:
        got = json.load(open(path))
    except ValueError:
        raise AssertionError(f"{path} is not valid JSON (torn response?)")
    if got == ga:
        n_a += 1
    elif got == gb:
        n_b += 1
    else:
        raise AssertionError(f"{path} matches neither version (mixed-version response)")
post = json.load(open(out + "/post_swap.json"))
assert post == gb, "post-swap predict does not match the new model"
print(f"smoke-swap: {len(codes)} requests, 0 failures ({n_a} on vA, {n_b} on vB, never mixed)")
EOF

# 4. Health + metrics reflect the swap.
curl -fsS "$BASE/healthz" | grep -q '"version":"vB"'
curl -fsS "$BASE/metrics" >"$OUT/metrics.txt"
grep -q '^repro_registry_swaps_total 1$' "$OUT/metrics.txt"
grep -q 'repro_model_requests_total{model="demo"' "$OUT/metrics.txt"

# 5. Graceful drain on SIGTERM.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
	kill -0 "$SERVE_PID" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
	echo "server ignored SIGTERM:"; cat "$OUT/serve.log"; exit 1
fi
wait "$SERVE_PID" || { echo "server exited non-zero:"; cat "$OUT/serve.log"; exit 1; }
SERVE_PID=""
grep -q "served .* predictions in .* micro-batches" "$OUT/serve.log" || {
	echo "drain stats missing:"; cat "$OUT/serve.log"; exit 1; }
echo "smoke-swap: OK"
