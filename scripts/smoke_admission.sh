#!/usr/bin/env bash
# End-to-end smoke of the edge admission layer (make smoke-admission,
# CI job smoke-admission, DESIGN.md §15): datagen → train → a golden
# no-admission run, then the same server behind an enforced policy:
#
#   A. shed: one long rollout pins max_concurrent=1 while 4 gold +
#      16 bulk predicts arrive — every request gets exactly one typed
#      outcome (200 or 503 "overloaded" + Retry-After), gold is NEVER
#      shed while bulk is, and every 200 body is bit-identical to the
#      no-admission golden response;
#   B. rate limit: hot-reload (POST /v2/admin/policy) to a 1 req/s
#      bucket, burst a sequential run into it, assert typed 429
#      "rate_limited" + Retry-After and golden-identical successes;
#   C. CIDR hot-reload mid-load: flip 127.0.0.0/8 from denied to
#      allowed while a request loop runs — the loop sees 403s, then
#      200s, and nothing else (no drops, no transport errors);
#   D. SIGHUP: rewrite the -policy file and signal — same flip without
#      the admin route;
#   E. /metrics exports every repro_admission_* family with the
#      counters the phases above must have moved, and the overload
#      mode of scripts/loadtest.sh reports 2xx/429/503 separately.
#
# Run from anywhere: scripts/smoke_admission.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=smoke-admission-out
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$OUT"
}
trap cleanup EXIT
rm -rf "$OUT" && mkdir -p "$OUT"

go build -o "$OUT/serve" ./cmd/serve
go build -o "$OUT/policyc" ./cmd/policyc
go run ./cmd/datagen -n 24 -snapshots 30 -out "$OUT/data.gob"
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -out "$OUT/ckpt"

# Deterministic predict payload (shape must match the trained grid).
python3 - "$OUT/predict_req.json" <<'EOF'
import json, sys
n = 4 * 24 * 24
data = [((i * 2654435761) % 1000) / 1000.0 for i in range(n)]
json.dump({"states": [{"shape": [4, 24, 24], "data": data}]}, open(sys.argv[1], "w"))
EOF

start_serve() { # args: extra serve flags…
	"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckpt" -init "$OUT/data.gob" \
		-max-batch 4 -max-delay 1ms "$@" >"$OUT/serve.log" 2>&1 &
	SERVE_PID=$!
	ADDR=""
	for _ in $(seq 1 100); do
		ADDR=$(awk '/^serving on /{print $3; exit}' "$OUT/serve.log")
		[ -n "$ADDR" ] && break
		kill -0 "$SERVE_PID" 2>/dev/null || { echo "server died:"; cat "$OUT/serve.log"; exit 1; }
		sleep 0.1
	done
	[ -n "$ADDR" ] || { echo "server did not come up:"; cat "$OUT/serve.log"; exit 1; }
	BASE="http://$ADDR"
}

stop_serve() {
	kill -TERM "$SERVE_PID"
	for _ in $(seq 1 100); do
		kill -0 "$SERVE_PID" 2>/dev/null || break
		sleep 0.1
	done
	wait "$SERVE_PID" || { echo "server exited non-zero:"; cat "$OUT/serve.log"; exit 1; }
	SERVE_PID=""
}

predict_code() { # args: outfile [curl extras…]
	local out="$1"; shift
	curl -sS -o "$out" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
		"$@" --data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" 2>/dev/null || echo 000
}

# ---- Golden run: no admission at all.
start_serve
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" >"$OUT/golden.json"
stop_serve
[ -s "$OUT/golden.json" ] || { echo "golden predict is empty"; exit 1; }
echo "smoke-admission: golden no-admission response captured"

# ---- The enforced run. Phase A policy: one slot, gold outranks bulk.
cat >"$OUT/policy.json" <<'EOF'
{
	"max_concurrent": 1,
	"max_queue_wait": "30s",
	"class_header": "X-Class",
	"classes": [
		{"name": "gold", "queue": 64},
		{"name": "bulk", "queue": 2}
	]
}
EOF
"$OUT/policyc" -policy "$OUT/policy.json" >/dev/null   # the offline check agrees
start_serve -policy "$OUT/policy.json"
grep -q "admission: policy" "$OUT/serve.log" || { echo "admission not enabled:"; cat "$OUT/serve.log"; exit 1; }
echo "smoke-admission: server at $BASE (policy enforced)"

# Pin the single slot with a long streaming rollout…
curl -fsS -H 'X-Class: gold' "$BASE/v1/rollout?steps=600" >"$OUT/rollout.ndjson" &
ROLLOUT_PID=$!
for _ in $(seq 1 100); do
	curl -fsS "$BASE/metrics" | grep -q '^repro_admission_running 1$' && break
	sleep 0.05
done
curl -fsS "$BASE/metrics" | grep -q '^repro_admission_running 1$' || {
	echo "rollout never took the slot"; exit 1; }

# …then slam it: 4 gold + 16 bulk concurrent predicts.
CURL_PIDS=()
for i in $(seq 1 16); do
	( predict_code "$OUT/bulk_$i.json" -H 'X-Class: bulk' -D "$OUT/bulk_$i.hdr" >"$OUT/bulk_$i.code" ) &
	CURL_PIDS+=("$!")
done
for i in $(seq 1 4); do
	( predict_code "$OUT/gold_$i.json" -H 'X-Class: gold' >"$OUT/gold_$i.code" ) &
	CURL_PIDS+=("$!")
done
wait "${CURL_PIDS[@]}"
wait "$ROLLOUT_PID" || { echo "pinning rollout failed"; cat "$OUT/serve.log"; exit 1; }

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
golden = open(out + "/golden.json", "rb").read()
shed = ok = 0
for cls, n in (("gold", 4), ("bulk", 16)):
    for i in range(1, n + 1):
        code = open(f"{out}/{cls}_{i}.code").read().strip()
        body = open(f"{out}/{cls}_{i}.json", "rb").read()
        assert code in ("200", "503"), f"{cls} {i}: untyped outcome {code!r}"
        if code == "200":
            ok += 1
            assert body == golden, f"{cls} {i}: 200 body differs from the no-admission golden"
        else:
            shed += 1
            assert cls != "gold", f"gold {i} was shed while bulk traffic existed"
            env = json.loads(body)["error"]
            assert env["code"] == "overloaded", env
            assert env["request_id"], "shed response lost its request ID"
print(f"smoke-admission: phase A ok ({ok} served bit-identical, {shed} bulk shed, 0 gold shed)")
assert shed >= 1, "saturation produced no shed at all"
EOF
# Every 503 advertises when to come back.
for f in "$OUT"/bulk_*.code; do
	i=${f##*bulk_}; i=${i%.code}
	if [ "$(cat "$f")" = 503 ]; then
		grep -qi '^retry-after:' "$OUT/bulk_$i.hdr" || {
			echo "bulk $i shed without Retry-After:"; cat "$OUT/bulk_$i.hdr"; exit 1; }
	fi
done
# ---- Phase B: hot-reload to a 1 req/s bucket via the admin route.
curl -fsS -X POST --data-binary '{"rate":1,"burst":2}' "$BASE/v2/admin/policy" >"$OUT/reload1.json"
grep -q '"op":"policy"' "$OUT/reload1.json" || { echo "reload response malformed: $(cat "$OUT/reload1.json")"; exit 1; }
LIMITED=0
for i in $(seq 1 6); do
	code=$(predict_code "$OUT/burst_$i.json")
	echo "$code" >"$OUT/burst_$i.code"
	if [ "$code" = 429 ]; then
		LIMITED=$((LIMITED + 1))
		# The refusal is typed and hints when to come back.
		grep -q '"code":"rate_limited"' "$OUT/burst_$i.json" || {
			echo "429 body lacks the typed code: $(cat "$OUT/burst_$i.json")"; exit 1; }
	elif [ "$code" = 200 ]; then
		cmp -s "$OUT/burst_$i.json" "$OUT/golden.json" || {
			echo "admitted burst response differs from golden"; exit 1; }
	else
		echo "burst request $i: unexpected status $code"; exit 1
	fi
done
[ "$LIMITED" -ge 1 ] || { echo "1 req/s bucket never limited a 6-request burst"; exit 1; }
# Retry-After on a deterministic refusal: the bucket is empty now.
RETRY=$(curl -sS -o /dev/null -D - -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" | awk 'tolower($1)=="retry-after:"{print $2}' | tr -d '\r')
[ -n "$RETRY" ] && [ "$RETRY" -ge 1 ] || { echo "429 without a usable Retry-After: '$RETRY'"; exit 1; }
echo "smoke-admission: phase B ok ($LIMITED of 6 rate-limited, Retry-After $RETRY)"

# ---- Phase C: flip a denied CIDR to allowed in the middle of a
# request loop; the loop must see 403s, then 200s, and nothing else.
curl -fsS -X POST --data-binary '{"rules":[{"cidr":"127.0.0.0/8","action":"deny"}]}' \
	"$BASE/v2/admin/policy" >/dev/null
code=$(predict_code /dev/null)
[ "$code" = 403 ] || { echo "denied CIDR answered $code, want 403"; exit 1; }

: >"$OUT/flip.codes"
(
	for _ in $(seq 1 200); do
		predict_code /dev/null >>"$OUT/flip.codes"
		echo >>"$OUT/flip.codes"
	done
) &
LOOP_PID=$!
sleep 0.3
curl -fsS -X POST --data-binary '{}' "$BASE/v2/admin/policy" >/dev/null  # allow everything
wait "$LOOP_PID"
python3 - "$OUT/flip.codes" <<'EOF'
import sys
codes = [l.strip() for l in open(sys.argv[1]) if l.strip()]
assert codes, "flip loop made no requests"
bad = [c for c in codes if c not in ("403", "200")]
assert not bad, f"hot reload dropped requests or leaked untyped statuses: {set(bad)}"
assert codes[-1] == "200", "loop never saw the policy flip take effect"
n403 = codes.count("403")
print(f"smoke-admission: phase C ok ({n403} denied then {len(codes)-n403} allowed, zero drops)")
EOF

# ---- Phase D: the same flip through SIGHUP + the -policy file.
cat >"$OUT/policy.json" <<'EOF'
{"rules": [{"cidr": "127.0.0.0/8", "action": "deny"}]}
EOF
kill -HUP "$SERVE_PID"
for _ in $(seq 1 100); do
	[ "$(predict_code /dev/null)" = 403 ] && break
	sleep 0.1
done
[ "$(predict_code /dev/null)" = 403 ] || { echo "SIGHUP deny reload never applied"; cat "$OUT/serve.log"; exit 1; }
cat >"$OUT/policy.json" <<'EOF'
{"rate": 20, "burst": 10}
EOF
kill -HUP "$SERVE_PID"
for _ in $(seq 1 100); do
	[ "$(predict_code /dev/null)" = 200 ] && break
	sleep 0.1
done
[ "$(predict_code /dev/null)" = 200 ] || { echo "SIGHUP allow reload never applied"; cat "$OUT/serve.log"; exit 1; }
grep -q "admission: policy reloaded from" "$OUT/serve.log" || {
	echo "SIGHUP reload not logged:"; cat "$OUT/serve.log"; exit 1; }
echo "smoke-admission: phase D ok (SIGHUP reload applied twice)"

# ---- Phase E: metrics families + the loadtest overload mode (the
# active policy rate-limits at 20 req/s, well under the closed-loop
# demand, so the report shows a 2xx/429 mix).
curl -fsS "$BASE/metrics" >"$OUT/metrics.txt"
for metric in \
	"repro_admission_allowed_total" \
	"repro_admission_denied_total" \
	"repro_admission_rate_limited_total" \
	"repro_admission_policy_reloads_total" \
	"repro_admission_shed_wait_seconds_bucket" \
	"repro_admission_shed_wait_seconds_count"; do
	grep -q "^$metric" "$OUT/metrics.txt" || { echo "metrics missing $metric"; cat "$OUT/metrics.txt"; exit 1; }
done
python3 - "$OUT/metrics.txt" <<'EOF'
import sys
vals = {}
for line in open(sys.argv[1]):
    if line.startswith("repro_admission_") and " " in line:
        k, v = line.rsplit(" ", 1)
        vals[k] = float(v)
assert vals["repro_admission_denied_total"] >= 1, vals
assert vals["repro_admission_rate_limited_total"] >= 1, vals
assert vals['repro_admission_shed_total{class="bulk"}'] >= 1, vals
assert vals['repro_admission_shed_total{class="gold"}'] == 0, vals
assert vals["repro_admission_policy_reloads_total"] >= 5, vals
assert vals["repro_admission_shed_wait_seconds_count"] >= 1, vals
bulk_shed = vals['repro_admission_shed_total{class="bulk"}']
print("smoke-admission: phase E metrics ok "
      f"(denied {vals['repro_admission_denied_total']:.0f}, "
      f"limited {vals['repro_admission_rate_limited_total']:.0f}, "
      f"bulk shed {bulk_shed:.0f})")
EOF

LOADTEST_MODE=overload scripts/loadtest.sh "$BASE" 8 3 4 24 24 | tee "$OUT/loadtest.txt"
grep -q "rate-limited (429)" "$OUT/loadtest.txt" || { echo "overload report missing the 429 column"; exit 1; }

stop_serve
echo "smoke-admission: OK"
