#!/usr/bin/env bash
# End-to-end smoke of the chaos-hardened runtime (make smoke-chaos, CI
# job smoke-chaos): train a 4-rank neighbour-padding model → assert the
# two halves of the DESIGN.md §11 contract plus the tracing surface:
#
#   1. order-preserving faults are invisible: a /v1/rollout under
#      seeded delay+jitter on every link streams a byte-identical body
#      to the fault-free rollout (same pinned X-Request-ID);
#   2. /metrics exports the request-latency and batch-fill histograms
#      and the access log names the request ID;
#   3. a cut link (partition) turns the rollout into a bounded,
#      attributed failure — the error record names the request ID, the
#      rank and the link, never a hang, never a frame;
#   4. the same two behaviours hold across real sockets: a 4-process
#      mpirun/infer job under delay chaos reproduces the clean rollout
#      table, and under a partition fails stop non-zero with the link
#      named.
#
# Run from anywhere: scripts/smoke_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=smoke-chaos-out
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$OUT"
}
trap cleanup EXIT
rm -rf "$OUT" && mkdir -p "$OUT"

go build -o "$OUT/serve" ./cmd/serve
go build -o "$OUT/infer" ./cmd/infer
go build -o "$OUT/mpirun" ./cmd/mpirun
go run ./cmd/datagen -n 24 -snapshots 30 -out "$OUT/data.gob"
# Neighbour padding so rollouts genuinely exchange halo strips — chaos
# on the links must have something to disturb.
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 \
	-strategy neighbor-pad -out "$OUT/ckpt" -model-name chaosdemo

start_serve() { # start_serve <logfile> [extra serve flags...]
	local logf=$1
	shift
	"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckpt" -init "$OUT/data.gob" \
		-max-batch 4 -max-delay 1ms "$@" >"$logf" 2>&1 &
	SERVE_PID=$!
	ADDR=""
	for _ in $(seq 1 100); do
		ADDR=$(awk '/^serving on /{print $3; exit}' "$logf")
		[ -n "$ADDR" ] && break
		kill -0 "$SERVE_PID" 2>/dev/null || { echo "server died:"; cat "$logf"; exit 1; }
		sleep 0.1
	done
	[ -n "$ADDR" ] || { echo "server did not come up:"; cat "$logf"; exit 1; }
	BASE="http://$ADDR"
}

stop_serve() {
	kill "$SERVE_PID" 2>/dev/null || true
	wait "$SERVE_PID" 2>/dev/null || true
	SERVE_PID=""
}

# 1. Fault-free golden rollout, request ID pinned so the body (which
# stamps request_id into every record) is comparable across servers.
start_serve "$OUT/serve_golden.log"
curl -fsS -H 'X-Request-ID: chaos-smoke' --max-time 120 \
	"$BASE/v1/rollout?steps=3" >"$OUT/golden.ndjson"
stop_serve
[ "$(wc -l <"$OUT/golden.ndjson")" -eq 3 ] || {
	echo "golden rollout did not stream 3 records:"; cat "$OUT/golden.ndjson"; exit 1; }

# The same rollout under seeded delay + jitter on every link: slower,
# byte-for-byte identical.
start_serve "$OUT/serve_delay.log" -access-log \
	-chaos 'delay:*>*:d=500us:p=0.5,jitter:*>*:d=1ms' -chaos-seed 7
curl -fsS -H 'X-Request-ID: chaos-smoke' --max-time 120 \
	"$BASE/v1/rollout?steps=3" >"$OUT/delay.ndjson"
cmp "$OUT/golden.ndjson" "$OUT/delay.ndjson" || {
	echo "rollout under delay/jitter chaos is not byte-identical"; exit 1; }
echo "smoke-chaos: delay+jitter rollout byte-identical to fault-free"

# 2. Histograms + tracing surface on the same live server.
curl -fsS "$BASE/metrics" >"$OUT/metrics.txt"
grep -q 'repro_model_request_latency_seconds_bucket{model="chaosdemo",le="0.0001"}' "$OUT/metrics.txt"
grep -q 'repro_model_request_latency_seconds_bucket{model="chaosdemo",le="+Inf"}' "$OUT/metrics.txt"
grep -q '^repro_model_request_latency_seconds_count{model="chaosdemo"} 1$' "$OUT/metrics.txt"
grep -q 'repro_model_batch_fill_delay_seconds_bucket{model="chaosdemo"' "$OUT/metrics.txt"
stop_serve
grep -q 'GET /v1/rollout status=200' "$OUT/serve_delay.log"
grep -q 'request=chaos-smoke' "$OUT/serve_delay.log"
grep -q 'rollout request=chaos-smoke .*comm_msgs=' "$OUT/serve_delay.log"
echo "smoke-chaos: /metrics histograms and access-log tracing present"

# 3. A cut link: the stream must end in one attributed error record,
# within the receive deadline — not hang, not fabricate frames.
start_serve "$OUT/serve_part.log" \
	-chaos 'partition:1>0' -chaos-recv-timeout 2s
curl -fsS -H 'X-Request-ID: chaos-part' --max-time 60 \
	"$BASE/v1/rollout?steps=3" >"$OUT/part.ndjson"
stop_serve
python3 - "$OUT/part.ndjson" <<'EOF'
import json, sys
recs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert recs, "partitioned rollout streamed nothing"
frames = [r for r in recs if not r.get("error")]
assert not frames, f"partitioned rollout still produced {len(frames)} frame(s)"
err = recs[-1]["error"]
for want in ("request=chaos-part", "rank 0", "link 1->0", "receive deadline"):
    assert want in err, f"error not attributed ({want!r} missing): {err}"
print("smoke-chaos: partition fail-stop attributed:", err.split(";")[0])
EOF

# 4. The same contract over real sockets: 4 OS processes via mpirun.
run_tcp() { # run_tcp <outfile> [extra infer flags...]
	local outf=$1
	shift
	"$OUT/mpirun" -quiet -n 4 -- "$OUT/infer" -data "$OUT/data.gob" \
		-ckpt "$OUT/ckpt" -steps 3 "$@" >"$outf" 2>&1
}
run_tcp "$OUT/tcp_clean.txt"
run_tcp "$OUT/tcp_delay.txt" \
	-chaos 'delay:*>*:d=500us:p=0.5,jitter:*>*:d=1ms' -chaos-seed 7
# Rank 0 prints the scored rollout table; lines within one rank stay
# ordered, so its output must match modulo the chaos banner.
grep '^\[rank 0\]' "$OUT/tcp_clean.txt" | grep -v 'chaos:' >"$OUT/tcp_clean_r0.txt"
grep '^\[rank 0\]' "$OUT/tcp_delay.txt" | grep -v 'chaos:' >"$OUT/tcp_delay_r0.txt"
diff -u "$OUT/tcp_clean_r0.txt" "$OUT/tcp_delay_r0.txt" || {
	echo "tcp rollout under delay chaos diverged from the clean run"; exit 1; }
echo "smoke-chaos: tcp rollout under delay chaos bit-identical"

if timeout 60 "$OUT/mpirun" -quiet -n 4 -- "$OUT/infer" -data "$OUT/data.gob" \
	-ckpt "$OUT/ckpt" -steps 3 -chaos 'partition:1>0' \
	-chaos-recv-timeout 2s >"$OUT/tcp_part.txt" 2>&1; then
	echo "partitioned tcp job exited zero:"; cat "$OUT/tcp_part.txt"; exit 1
fi
grep -q 'link 1->0' "$OUT/tcp_part.txt" || {
	echo "tcp fail-stop not attributed to the cut link:"; cat "$OUT/tcp_part.txt"; exit 1; }
echo "smoke-chaos: tcp partition fail-stop attributed, job torn down"

echo "smoke-chaos: OK"
