#!/usr/bin/env bash
# Closed-loop load test for cmd/serve's /v1/predict: C concurrent curl
# workers each fire predictions back to back for D seconds; reports
# aggregate requests/s. Pair it with the server's exit stats (mean
# micro-batch fill) to see the coalescer at work:
#
#   go run ./cmd/serve -ckpt ckpt -addr 127.0.0.1:8080 &
#   scripts/loadtest.sh http://127.0.0.1:8080 16 10
#
# Usage: scripts/loadtest.sh BASE_URL [CONCURRENCY] [SECONDS] [C H W]
# The state shape (default 4 128 128) must match the served grid; the
# payload is a synthetic deterministic state, which is fine for
# throughput measurement (the engine does identical work for any
# values).
set -euo pipefail

BASE="${1:?usage: loadtest.sh BASE_URL [CONCURRENCY] [SECONDS] [C H W]}"
WORKERS="${2:-16}"
SECONDS_RUN="${3:-10}"
C="${4:-4}"
H="${5:-128}"
W="${6:-128}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

python3 - "$TMP/req.json" "$C" "$H" "$W" <<'EOF'
import json, sys
out, c, h, w = sys.argv[1], *map(int, sys.argv[2:5])
n = c * h * w
# Deterministic non-trivial values; magnitude is irrelevant to cost.
data = [((i * 2654435761) % 1000) / 1000.0 for i in range(n)]
json.dump({"states": [{"shape": [c, h, w], "data": data}]}, open(out, "w"))
EOF

curl -fsS "$BASE/healthz" >/dev/null || { echo "server at $BASE not healthy"; exit 1; }

echo "loadtest: $WORKERS workers × ${SECONDS_RUN}s against $BASE (state ${C}x${H}x${W})"
END=$(( $(date +%s) + SECONDS_RUN ))
for i in $(seq 1 "$WORKERS"); do
	(
		ok=0
		fail=0
		while [ "$(date +%s)" -lt "$END" ]; do
			# -f turns HTTP >= 400 into a curl failure, so both transport
			# errors and non-200 responses land in the failure count.
			if curl -fsS -o /dev/null -X POST -H 'Content-Type: application/json' \
				--data-binary @"$TMP/req.json" "$BASE/v1/predict"; then
				ok=$((ok + 1))
			else
				fail=$((fail + 1))
			fi
		done
		echo "$ok" >"$TMP/count_$i"
		echo "$fail" >"$TMP/fail_$i"
	) &
done
wait

TOTAL=0
FAILED=0
for f in "$TMP"/count_*; do
	TOTAL=$((TOTAL + $(cat "$f")))
done
for f in "$TMP"/fail_*; do
	FAILED=$((FAILED + $(cat "$f")))
done
echo "loadtest: $TOTAL requests in ${SECONDS_RUN}s = $(python3 -c "print(f'{$TOTAL/$SECONDS_RUN:.1f}')") req/s, $FAILED failed"
if [ "$FAILED" -gt 0 ]; then
	echo "loadtest: FAIL: $FAILED request(s) failed"
	exit 1
fi
