#!/usr/bin/env bash
# Closed-loop load test for cmd/serve's /v1/predict: C concurrent curl
# workers each fire predictions back to back for D seconds; reports
# aggregate requests/s. Pair it with the server's exit stats (mean
# micro-batch fill) to see the coalescer at work:
#
#   go run ./cmd/serve -ckpt ckpt -addr 127.0.0.1:8080 &
#   scripts/loadtest.sh http://127.0.0.1:8080 16 10
#
# Usage: scripts/loadtest.sh BASE_URL [CONCURRENCY] [SECONDS] [C H W]
# The state shape (default 4 128 128) must match the served grid; the
# payload is a synthetic deterministic state, which is fine for
# throughput measurement (the engine does identical work for any
# values).
#
# Modes (LOADTEST_MODE env):
#   strict   (default) any non-2xx or transport error is a failure and
#            the script exits 1 — the right contract when nothing
#            should be refused.
#   overload the admission-control contract (DESIGN.md §15): 2xx, 429
#            (rate_limited) and 503 (overloaded) are each counted and
#            reported separately as deliberate, typed outcomes; only
#            other statuses and transport errors fail the run.
#
# LOADTEST_HEADER optionally adds one extra request header (e.g.
# "X-Class: bulk") so admission classes can be exercised per run.
set -euo pipefail

BASE="${1:?usage: loadtest.sh BASE_URL [CONCURRENCY] [SECONDS] [C H W]}"
WORKERS="${2:-16}"
SECONDS_RUN="${3:-10}"
C="${4:-4}"
H="${5:-128}"
W="${6:-128}"
MODE="${LOADTEST_MODE:-strict}"
EXTRA_HEADER="${LOADTEST_HEADER:-}"

case "$MODE" in
	strict|overload) ;;
	*) echo "loadtest: unknown LOADTEST_MODE '$MODE' (want strict or overload)"; exit 2 ;;
esac

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

python3 - "$TMP/req.json" "$C" "$H" "$W" <<'EOF'
import json, sys
out, c, h, w = sys.argv[1], *map(int, sys.argv[2:5])
n = c * h * w
# Deterministic non-trivial values; magnitude is irrelevant to cost.
data = [((i * 2654435761) % 1000) / 1000.0 for i in range(n)]
json.dump({"states": [{"shape": [c, h, w], "data": data}]}, open(out, "w"))
EOF

curl -fsS "$BASE/healthz" >/dev/null || { echo "server at $BASE not healthy"; exit 1; }

CURL_ARGS=(-sS -o /dev/null -X POST -H 'Content-Type: application/json')
if [ -n "$EXTRA_HEADER" ]; then
	CURL_ARGS+=(-H "$EXTRA_HEADER")
fi

echo "loadtest: $WORKERS workers × ${SECONDS_RUN}s against $BASE (state ${C}x${H}x${W}, mode $MODE)"
END=$(( $(date +%s) + SECONDS_RUN ))
for i in $(seq 1 "$WORKERS"); do
	(
		ok=0
		limited=0
		shed=0
		fail=0
		while [ "$(date +%s)" -lt "$END" ]; do
			# -w %{http_code} lets overload mode tell typed refusals
			# (429/503) apart from real failures; a transport error
			# yields 000.
			code="$(curl "${CURL_ARGS[@]}" -w '%{http_code}' \
				--data-binary @"$TMP/req.json" "$BASE/v1/predict" 2>/dev/null || true)"
			case "$code" in
				2??) ok=$((ok + 1)) ;;
				429) [ "$MODE" = overload ] && limited=$((limited + 1)) || fail=$((fail + 1)) ;;
				503) [ "$MODE" = overload ] && shed=$((shed + 1)) || fail=$((fail + 1)) ;;
				*) fail=$((fail + 1)) ;;
			esac
		done
		echo "$ok $limited $shed $fail" >"$TMP/counts_$i"
	) &
done
wait

TOTAL=0; OK=0; LIMITED=0; SHED=0; FAILED=0
for f in "$TMP"/counts_*; do
	read -r ok limited shed fail <"$f"
	OK=$((OK + ok)); LIMITED=$((LIMITED + limited)); SHED=$((SHED + shed)); FAILED=$((FAILED + fail))
done
TOTAL=$((OK + LIMITED + SHED + FAILED))

if [ "$MODE" = overload ]; then
	echo "loadtest: $TOTAL requests in ${SECONDS_RUN}s = $(python3 -c "print(f'{$TOTAL/$SECONDS_RUN:.1f}')") req/s: $OK ok (2xx), $LIMITED rate-limited (429), $SHED shed (503), $FAILED failed"
else
	echo "loadtest: $TOTAL requests in ${SECONDS_RUN}s = $(python3 -c "print(f'{$TOTAL/$SECONDS_RUN:.1f}')") req/s, $FAILED failed"
fi
if [ "$FAILED" -gt 0 ]; then
	echo "loadtest: FAIL: $FAILED request(s) failed"
	exit 1
fi
