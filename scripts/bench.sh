#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: the committed perf-trajectory
# snapshot of the convolution engine (GEMM fast path vs naive
# reference), the per-layer Table-I costs, the serving API's
# concurrent-session rollout throughput (1 vs 4 sessions over one
# Engine; the steps_per_s metric), the halo-exchange schedule ×
# transport matrix ({mem,tcp} × {blocking,overlap} rollout steps/s),
# the micro-batched serving throughput (unbatched Predict vs
# Batcher at batch 1/4/8/16; requests_per_s), the f64-vs-f32 session
# rollout (PrecisionRollout; speedup_vs_f64), and the fused zero-alloc
# f32 steady state (SteadyStateRollout; allocs_per_op pinned at 0).
# Run from anywhere:
#
#   scripts/bench.sh                # writes BENCH_baseline.json
#   scripts/bench.sh out.json      # writes elsewhere
#
# BENCHTIME (default 10x) and BENCH (default the conv + session +
# halo-exchange benchmarks) override the sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
BENCH="${BENCH:-ConvGEMMvsNaive|ConvGEMMWorkers|Table1_LayerForwardBackward|SessionConcurrentRollout|HaloOverlapVsBlocking|BatcherThroughput|PrecisionRollout|SteadyStateRollout}"
BENCHTIME="${BENCHTIME:-10x}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem -timeout 30m . | tee "$RAW"

CPU="$(awk -F': ' '/^cpu:/{print $2; exit}' "$RAW")"
[ -n "$CPU" ] || CPU="unknown"

# The -N suffix on benchmark names is the GOMAXPROCS the run actually
# used; record it so benchdiff can tell a scaling-capable baseline
# from a serialized one. The testing package omits the suffix entirely
# when GOMAXPROCS is 1, so no suffix means a serialized run.
GMP="$(awk '/^Benchmark/{ if (match($1, /-[0-9]+$/)) { print substr($1, RSTART+1); exit } }' "$RAW")"
[ -n "$GMP" ] || GMP=1

{
	echo "{"
	echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
	echo "  \"go\": \"$(go version | awk '{print $3}')\","
	echo "  \"cpu\": \"$CPU\","
	echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0),"
	echo "  \"gomaxprocs\": $GMP,"
	echo "  \"command\": \"go test -run ^\$ -bench '$BENCH' -benchtime $BENCHTIME -benchmem .\","
	echo "  \"benchmarks\": ["
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
			printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, name, $2
			sep = ",\n"
			msep = ""
			for (i = 3; i + 1 <= NF; i += 2) {
				unit = $(i + 1)
				gsub(/\//, "_per_", unit)
				gsub(/[^A-Za-z0-9_]/, "_", unit)
				printf "%s\"%s\": %s", msep, unit, $i
				msep = ", "
			}
			printf "}}"
		}
		END { print "" }
	' "$RAW"
	echo "  ]"
	echo "}"
} >"$OUT"

echo "wrote $OUT"
