#!/usr/bin/env bash
# End-to-end smoke of cluster serving (make smoke-cluster, CI job
# smoke-cluster): train two model versions → golden single-replica run
# → 3 replicas + 1 warm standby behind cmd/router → sustained
# concurrent load → rolling hot-swap MID-LOAD → kill -9 one replica
# MID-LOAD → promote the standby → assert:
#
#   1. zero failed client requests across the whole run — the rolling
#      swap AND the kill -9 are both invisible to clients;
#   2. every response bit-matches one of the two versions served by a
#      single-replica golden run (never a mix, never replica-dependent);
#   3. the rolling swap touched replicas strictly in sequence and fleet
#      capacity never dropped below N−1 (asserted from the router's own
#      min_routable accounting, response + /metrics);
#   4. the router detected the killed replica (healthz down, ≥1 retry)
#      and the promoted standby serves the post-swap version;
#   5. the fixed loadtest.sh runs clean against the router (its
#      non-zero-exit-on-failure contract is load-bearing here);
#   6. router and surviving replicas drain gracefully on SIGTERM.
#
# Run from anywhere: scripts/smoke_cluster.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=smoke-cluster-out
ROUTER_PID=""
GOLDEN_PID=""
REPLICA_PIDS=()
LOAD_PIDS=()
cleanup() {
	touch "$OUT/stop" 2>/dev/null || true
	for p in "${LOAD_PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
	[ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2>/dev/null || true
	[ -n "$GOLDEN_PID" ] && kill "$GOLDEN_PID" 2>/dev/null || true
	for p in "${REPLICA_PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
	rm -rf "$OUT"
}
trap cleanup EXIT
rm -rf "$OUT" && mkdir -p "$OUT"

go build -o "$OUT/serve" ./cmd/serve
go build -o "$OUT/router" ./cmd/router
go run ./cmd/datagen -n 24 -snapshots 30 -out "$OUT/data.gob"
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -seed 1 \
	-out "$OUT/ckptA" -model-name demo -model-version vA
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -seed 2 \
	-out "$OUT/ckptB" -model-name demo -model-version vB

# wait_addr LOGFILE PATTERN PID → echoes the parsed address.
wait_addr() {
	local log=$1 pat=$2 pid=$3 addr=""
	for _ in $(seq 1 100); do
		addr=$(awk -v p="$pat" '$0 ~ "^"p{print $3; exit}' "$log")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || { echo "process died:" >&2; cat "$log" >&2; return 1; }
		sleep 0.1
	done
	[ -n "$addr" ] || { echo "no listener:" >&2; cat "$log" >&2; return 1; }
	echo "$addr"
}

# Golden single-replica run: both versions' bit-exact answers for the
# probe request the fleet load will replay.
"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckptA" -init "$OUT/data.gob" \
	-max-batch 4 -max-delay 1ms >"$OUT/golden.log" 2>&1 &
GOLDEN_PID=$!
GADDR=$(wait_addr "$OUT/golden.log" "serving on " "$GOLDEN_PID")
GBASE="http://$GADDR"
curl -fsS "$GBASE/v2/models/demo/rollout?steps=1" >"$OUT/frame.ndjson"
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
f = json.loads(open(out + "/frame.ndjson").readline())
assert not f.get("error"), f
json.dump({"states": [f["frame"]]}, open(out + "/req.json", "w"))
# loadtest.sh needs the grid shape for its synthetic payload.
open(out + "/shape.txt", "w").write(" ".join(str(d) for d in f["frame"]["shape"]) + "\n")
EOF
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$GBASE/v2/models/demo/predict" >"$OUT/goldenA.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary '{"name":"goldenb","dir":"'"$OUT"'/ckptB"}' "$GBASE/v2/admin/load" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$GBASE/v2/models/goldenb/predict" >"$OUT/goldenB.json"
kill -TERM "$GOLDEN_PID" && wait "$GOLDEN_PID" || true
GOLDEN_PID=""
echo "smoke-cluster: golden answers captured for vA and vB"

# 3 routed replicas + 1 warm standby, all booted from ckptA.
REPLICA_FLAGS=()
declare -A REPLICA_PID_BY_ID
for i in 1 2 3 4; do
	"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckptA" -replica "r$i" \
		-max-batch 4 -max-delay 1ms >"$OUT/r$i.log" 2>&1 &
	pid=$!
	REPLICA_PIDS+=("$pid")
	REPLICA_PID_BY_ID[r$i]=$pid
	addr=$(wait_addr "$OUT/r$i.log" "serving on " "$pid")
	if [ "$i" -lt 4 ]; then
		REPLICA_FLAGS+=(-replica "r$i=http://$addr")
	else
		REPLICA_FLAGS+=(-standby "r$i=http://$addr")
	fi
done

"$OUT/router" -addr 127.0.0.1:0 "${REPLICA_FLAGS[@]}" \
	-probe-interval 500ms -access-log >"$OUT/router.log" 2>&1 &
ROUTER_PID=$!
RADDR=$(wait_addr "$OUT/router.log" "routing on " "$ROUTER_PID")
BASE="http://$RADDR"
echo "smoke-cluster: router at $BASE over r1 r2 r3 (+standby r4)"

curl -fsS "$BASE/healthz" >"$OUT/health0.json"
grep -q '"status":"ok"' "$OUT/health0.json"
grep -q '"ready":3' "$OUT/health0.json"

# Sustained concurrent load through the router.
WORKERS=4
for i in $(seq 1 "$WORKERS"); do
	(
		n=0
		while [ ! -f "$OUT/stop" ]; do
			code=$(curl -s -o "$OUT/load_${i}_${n}.json" -w '%{http_code}' \
				-X POST -H 'Content-Type: application/json' \
				--data-binary @"$OUT/req.json" "$BASE/v2/models/demo/predict" || echo 000)
			echo "$code" >>"$OUT/codes_$i"
			n=$((n + 1))
		done
	) &
	LOAD_PIDS+=("$!")
done

sleep 1 # traffic against vA

# Rolling hot-swap of the whole fleet to vB, mid-load.
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary '{"name":"demo","dir":"'"$OUT"'/ckptB"}' "$BASE/v2/admin/swap" >"$OUT/swap.json"
python3 - "$OUT" <<'EOF'
import json, sys
sw = json.load(open(sys.argv[1] + "/swap.json"))
assert sw.get("op") == "rolling-swap" and sw.get("version") == "vB", sw
steps = sw["steps"]
assert len(steps) == 4, f"want 3 routed + 1 standby steps, got {steps}"
assert all(s.get("to") == "vB" and not s.get("skipped") for s in steps), steps
assert steps[-1]["standby"] and steps[-1]["replica"] == "r4", steps
assert sw["min_routable"] >= 2, f"capacity dropped below N-1 during the deploy: {sw}"
print(f"smoke-cluster: rolling swap ok, min routable {sw['min_routable']} (never below N-1)")
EOF

sleep 1 # traffic against vB

# kill -9 one routed replica mid-load: clients must see nothing.
kill -9 "${REPLICA_PID_BY_ID[r2]}"
echo "smoke-cluster: kill -9 r2 under load"
for _ in $(seq 1 100); do
	curl -fsS "$BASE/healthz" >"$OUT/health_kill.json" || true
	grep -q '"id":"r2","url":[^,]*,"state":"down"' "$OUT/health_kill.json" && break
	sleep 0.1
done
grep -q '"id":"r2","url":[^,]*,"state":"down"' "$OUT/health_kill.json" || {
	echo "router never marked r2 down:"; cat "$OUT/health_kill.json"; exit 1; }

# Promote the warm standby to restore capacity; it was included in the
# rolling swap, so it serves vB.
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary '{"name":"r4"}' "$BASE/v2/admin/promote" | grep -q '"name":"r4"'
echo "smoke-cluster: promoted standby r4"

sleep 1 # traffic across the healed fleet
touch "$OUT/stop"
wait "${LOAD_PIDS[@]}"
LOAD_PIDS=()

curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/req.json" "$BASE/v2/models/demo/predict" >"$OUT/post_swap.json"

python3 - "$OUT" <<'EOF'
import glob, json, sys
out = sys.argv[1]
codes = []
for f in glob.glob(out + "/codes_*"):
    codes += [l.strip() for l in open(f) if l.strip()]
assert codes, "load generator produced no requests"
bad = [c for c in codes if c != "200"]
assert not bad, f"{len(bad)} of {len(codes)} requests failed across swap + kill -9: {bad[:10]}"
ga = json.load(open(out + "/goldenA.json"))
gb = json.load(open(out + "/goldenB.json"))
assert ga["data"] != gb["data"], "the two versions predict identically; smoke proves nothing"
n_a = n_b = 0
for path in glob.glob(out + "/load_*.json"):
    try:
        got = json.load(open(path))
    except ValueError:
        raise AssertionError(f"{path} is not valid JSON (torn response?)")
    if got == ga:
        n_a += 1
    elif got == gb:
        n_b += 1
    else:
        raise AssertionError(f"{path} matches neither golden version (mixed or replica-dependent response)")
post = json.load(open(out + "/post_swap.json"))
assert post == gb, "post-swap predict does not match the new model"
print(f"smoke-cluster: {len(codes)} requests, 0 failures ({n_a} on vA, {n_b} on vB, bit-identical to the golden run)")
EOF

# Router metrics: the kill was absorbed (zero failed, ≥1 retry), the
# swap completed and never dipped below N−1.
curl -fsS "$BASE/metrics" >"$OUT/metrics.txt"
grep -q '^repro_router_failed_requests_total 0$' "$OUT/metrics.txt"
grep -q '^repro_router_swaps_total 1$' "$OUT/metrics.txt"
RETRIES=$(awk '/^repro_router_retries_total /{print $2}' "$OUT/metrics.txt")
[ "$RETRIES" -ge 1 ] || { echo "kill -9 absorbed without any retry (retries=$RETRIES)?"; exit 1; }
MINR=$(awk '/^repro_router_swap_min_routable /{print $2}' "$OUT/metrics.txt")
[ "$MINR" -ge 2 ] || { echo "swap_min_routable=$MINR, want >= N-1"; exit 1; }
echo "smoke-cluster: metrics ok (0 failed, $RETRIES retries, min routable $MINR)"

# The fixed loadtest.sh (counts failures, exits non-zero) against the
# router: a short clean burst through the healed fleet.
read -r SC SH SW <"$OUT/shape.txt"
scripts/loadtest.sh "$BASE" 4 3 "$SC" "$SH" "$SW"

# Graceful teardown: router first, then the surviving replicas.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "router exited non-zero:"; cat "$OUT/router.log"; exit 1; }
ROUTER_PID=""
grep -q "routed .* requests .* rolling swaps" "$OUT/router.log" || {
	echo "router drain stats missing:"; cat "$OUT/router.log"; exit 1; }
for id in r1 r3 r4; do
	pid=${REPLICA_PID_BY_ID[$id]}
	kill -TERM "$pid"
	wait "$pid" || { echo "replica $id exited non-zero:"; cat "$OUT/$id.log"; exit 1; }
done
REPLICA_PIDS=()
echo "smoke-cluster: OK"
