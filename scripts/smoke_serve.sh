#!/usr/bin/env bash
# End-to-end smoke of the HTTP serving stack (make smoke-serve, CI job
# smoke-serve): datagen → train → start cmd/serve → exercise the API
# with curl and assert golden self-consistency:
#
#   1. GET /v1/rollout?steps=3 streams exactly 3 frames of the right
#      shape (chunked JSON lines from a streaming Session);
#   2. POST /v1/predict on rollout frame 1 reproduces rollout frame 2
#      BIT FOR BIT — the halo exchange inside the session must deliver
#      exactly what Predict's direct slicing reads, end to end through
#      JSON encode/decode and the micro-batcher;
#   3. the same predict twice is bit-identical (the batcher is
#      invisible to results);
#   4. 8 concurrent predicts all succeed (coalescing under real HTTP);
#   5. SIGTERM drains gracefully (exit 0, batch stats printed).
#
# Run from anywhere: scripts/smoke_serve.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=smoke-serve-out
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$OUT"
}
trap cleanup EXIT
rm -rf "$OUT" && mkdir -p "$OUT"

go build -o "$OUT/serve" ./cmd/serve
go run ./cmd/datagen -n 24 -snapshots 30 -out "$OUT/data.gob"
go run ./cmd/train -data "$OUT/data.gob" -ranks 4 -epochs 2 -out "$OUT/ckpt"

"$OUT/serve" -addr 127.0.0.1:0 -ckpt "$OUT/ckpt" -init "$OUT/data.gob" \
	-max-batch 4 -max-delay 1ms >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
	ADDR=$(awk '/^serving on /{print $3; exit}' "$OUT/serve.log")
	[ -n "$ADDR" ] && break
	kill -0 "$SERVE_PID" 2>/dev/null || { echo "server died:"; cat "$OUT/serve.log"; exit 1; }
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "server did not come up:"; cat "$OUT/serve.log"; exit 1; }
BASE="http://$ADDR"
echo "smoke-serve: server at $BASE"

curl -fsS "$BASE/healthz" | grep -q ok

# 1. Stream a 3-step rollout from the server-side initial state.
curl -fsS "$BASE/v1/rollout?steps=3" >"$OUT/rollout.ndjson"

# Build the predict request (frame 1 as history) and remember frame 2.
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
frames = [json.loads(l) for l in open(out + "/rollout.ndjson") if l.strip()]
assert len(frames) == 3, f"expected 3 rollout frames, got {len(frames)}"
for f in frames:
    assert "error" not in f or not f["error"], f
    assert f["frame"]["shape"] == [4, 24, 24], f["frame"]["shape"]
json.dump({"states": [frames[0]["frame"]]}, open(out + "/predict_req.json", "w"))
json.dump(frames[1]["frame"], open(out + "/rollout_frame2.json", "w"))
EOF

# 2 + 3. Predict from frame 1, twice.
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" >"$OUT/predict1.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" >"$OUT/predict2.json"

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
p1 = json.load(open(out + "/predict1.json"))
p2 = json.load(open(out + "/predict2.json"))
f2 = json.load(open(out + "/rollout_frame2.json"))
assert p1 == p2, "two identical predicts disagreed (batching is not invisible)"
assert p1["shape"] == f2["shape"] == [4, 24, 24]
assert p1["data"] == f2["data"], "predict(frame1) != rollout frame 2 (golden bit-identity broken)"
print("smoke-serve: golden predict/rollout bit-identity holds")
EOF

# 4. Concurrent predicts through the coalescer. (Wait on the curl
# PIDs only — a bare `wait` would also wait on the server.)
CURL_PIDS=()
for i in $(seq 1 8); do
	curl -fsS -X POST -H 'Content-Type: application/json' \
		--data-binary @"$OUT/predict_req.json" "$BASE/v1/predict" >"$OUT/conc_$i.json" &
	CURL_PIDS+=("$!")
done
wait "${CURL_PIDS[@]}"
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
ref = json.load(open(out + "/predict1.json"))
for i in range(1, 9):
    got = json.load(open(f"{out}/conc_{i}.json"))
    assert got == ref, f"concurrent predict {i} differs"
print("smoke-serve: 8 concurrent predicts bit-identical")
EOF

# 5. Graceful drain on SIGTERM.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
	kill -0 "$SERVE_PID" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
	echo "server ignored SIGTERM:"; cat "$OUT/serve.log"; exit 1
fi
wait "$SERVE_PID" || { echo "server exited non-zero:"; cat "$OUT/serve.log"; exit 1; }
SERVE_PID=""
grep -q "served .* predictions in .* micro-batches" "$OUT/serve.log" || {
	echo "drain stats missing:"; cat "$OUT/serve.log"; exit 1; }
echo "smoke-serve: OK"
