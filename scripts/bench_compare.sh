#!/usr/bin/env bash
# Bench-regression gate (make bench-compare, CI job bench-regression):
# run the benchmark sweep fresh and diff it against the committed
# BENCH_baseline.json with cmd/benchdiff. Exits non-zero when
# throughput (steps_per_s / requests_per_s) drops more than 15% or
# allocs_per_op grows more than 10% on any gated benchmark.
#
#   scripts/bench_compare.sh              # full committed sweep
#   BENCH=BatcherThroughput scripts/bench_compare.sh   # narrow it
#
# BENCH/BENCHTIME pass through to scripts/bench.sh. The candidate
# snapshot lands in bench-compare-out/ for inspection on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=bench-compare-out
rm -rf "$OUT" && mkdir -p "$OUT"

scripts/bench.sh "$OUT/candidate.json"
go run ./cmd/benchdiff -baseline BENCH_baseline.json -candidate "$OUT/candidate.json" "$@"
rm -rf "$OUT"
