package repro_test

// Runnable examples for the serving surface (doc.go): one-step
// prediction on an Engine, transparent micro-batching through a
// Batcher, and the HTTP client against an in-process server. Each
// builds a small untrained-but-deterministic ensemble — serving
// behaviour does not depend on the weights — so the examples run in
// milliseconds under `go test`.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// untrainedEnsemble builds a deterministic Table-I ensemble without
// training — serving behaviour (and cost) is weight-independent, so
// the examples and throughput benchmarks share this recipe.
func untrainedEnsemble(n, px, py int) (*core.Ensemble, error) {
	part, err := decomp.NewPartition(n, n, px, py)
	if err != nil {
		return nil, err
	}
	cfg := model.PaperConfig()
	models := make([]*nn.Sequential, part.Ranks())
	for r := range models {
		mc := cfg
		mc.Seed = int64(r + 1)
		m, err := model.Build(mc)
		if err != nil {
			return nil, err
		}
		models[r] = m
	}
	return &core.Ensemble{Partition: part, ModelCfg: cfg, Models: models}, nil
}

// exampleEnsemble builds the 2×2-rank, 16×16-grid ensemble the
// examples run on.
func exampleEnsemble() *core.Ensemble {
	ens, err := untrainedEnsemble(16, 2, 2)
	if err != nil {
		panic(err)
	}
	return ens
}

// Example_enginePredict serves a one-step prediction from a known
// full-domain state: the §IV-B evaluation path, callable from any
// number of goroutines at once.
func Example_enginePredict() {
	eng, err := core.NewEngine(exampleEnsemble())
	if err != nil {
		panic(err)
	}
	state := tensor.Normal(tensor.NewRNG(1), 0, 1, grid.NumChannels, 16, 16)
	frame, err := eng.Predict(context.Background(), state)
	if err != nil {
		panic(err)
	}
	fmt.Println("predicted shape:", frame.Shape(), "finite:", !frame.HasNaN())
	// Output:
	// predicted shape: [4 16 16] finite: true
}

// Example_batcher coalesces concurrent Predict calls into
// micro-batches. Results are bit-identical to unbatched calls — the
// batcher changes throughput, never values.
func Example_batcher() {
	eng, err := core.NewEngine(exampleEnsemble())
	if err != nil {
		panic(err)
	}
	bat, err := core.NewBatcher(eng, core.WithMaxBatch(4), core.WithMaxDelay(time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer bat.Close()

	ctx := context.Background()
	g := tensor.NewRNG(2)
	states := make([]*tensor.Tensor, 4)
	for i := range states {
		states[i] = tensor.Normal(g, 0, 1, grid.NumChannels, 16, 16)
	}
	var wg sync.WaitGroup
	frames := make([]*tensor.Tensor, len(states))
	for i := range states {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := bat.Predict(ctx, states[i])
			if err != nil {
				panic(err)
			}
			frames[i] = f
		}(i)
	}
	wg.Wait()
	identical := true
	for i, f := range frames {
		want, err := eng.Predict(ctx, states[i])
		if err != nil {
			panic(err)
		}
		identical = identical && f.Equal(want)
	}
	fmt.Println("coalesced results bit-identical to unbatched:", identical)
	// Output:
	// coalesced results bit-identical to unbatched: true
}

// Example_httpClient drives the HTTP front end: POST /v1/predict
// (micro-batched server-side) and a streamed /v1/rollout, via the
// typed client cmd/serve shares.
func Example_httpClient() {
	eng, err := core.NewEngine(exampleEnsemble())
	if err != nil {
		panic(err)
	}
	srv, err := serve.New(eng, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		panic(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	ctx := context.Background()
	client := serve.NewClient(hs.URL)
	state := tensor.Normal(tensor.NewRNG(3), 0, 1, grid.NumChannels, 16, 16)

	frame, err := client.Predict(ctx, state)
	if err != nil {
		panic(err)
	}
	fmt.Println("predict:", frame.Shape())

	steps := 0
	err = client.Rollout(ctx, 2, []*tensor.Tensor{state}, func(step int, frame *tensor.Tensor) error {
		steps++
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rollout frames streamed:", steps)
	// Output:
	// predict: [4 16 16]
	// rollout frames streamed: 2
}

// Example_registryHotSwap publishes a model in a core.Registry,
// hot-swaps it for a new version while an old-version session is
// still open, and shows the zero-downtime contract: new requests see
// the new version immediately, the in-flight session finishes on the
// old weights, and the old version drains only after its last
// reference is released (DESIGN.md §10).
func Example_registryHotSwap() {
	build := func() *core.Engine {
		ens, err := untrainedEnsemble(16, 2, 2)
		if err != nil {
			panic(err)
		}
		eng, err := core.NewEngine(ens)
		if err != nil {
			panic(err)
		}
		return eng
	}
	reg := core.NewRegistry()
	if _, err := reg.Load("surrogate", "v1", build()); err != nil {
		panic(err)
	}

	ctx := context.Background()
	state := tensor.Normal(tensor.NewRNG(4), 0, 1, grid.NumChannels, 16, 16)

	// A long-lived session pins v1 across the swap.
	h1, err := reg.Get("surrogate")
	if err != nil {
		panic(err)
	}
	ses, err := h1.Engine().NewSession(ctx, state)
	if err != nil {
		panic(err)
	}

	// Publish v2: new Gets route to it immediately.
	if _, err := reg.Swap("surrogate", "v2", build()); err != nil {
		panic(err)
	}
	h2, err := reg.Get("surrogate")
	if err != nil {
		panic(err)
	}
	fmt.Println("new requests see:", h2.Version())
	h2.Release()

	// The old session still runs on its own version, undisturbed.
	if _, err := ses.Step(ctx); err != nil {
		panic(err)
	}
	fmt.Println("in-flight session still on:", h1.Version())
	drained := func() bool {
		select {
		case <-h1.Drained():
			return true
		default:
			return false
		}
	}
	fmt.Println("v1 drained while referenced:", drained())
	ses.Close()
	h1.Release()
	fmt.Println("v1 drained after release:", drained())
	reg.Close()
	// Output:
	// new requests see: v2
	// in-flight session still on: v1
	// v1 drained while referenced: false
	// v1 drained after release: true
}
