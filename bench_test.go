// This file is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§IV), plus the ablations DESIGN.md
// calls out. Each benchmark prints/reports the quantities the
// corresponding exhibit shows; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// trainBench trains the paper's scheme through the Trainer API (the
// single training entrypoint since the Engine/Session redesign) and
// returns the parallel result.
func trainBench(b *testing.B, ds *dataset.Dataset, px, py int, cfg core.TrainConfig) *core.ParallelResult {
	b.Helper()
	trainer, err := core.NewTrainer(cfg, core.WithTopology(px, py))
	if err != nil {
		b.Fatal(err)
	}
	rep, err := trainer.Train(context.Background(), ds)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Parallel
}

// benchData caches generated datasets across benchmarks (generation
// itself is benchmarked separately).
var benchData struct {
	sync.Mutex
	cache map[string]*dataset.Dataset
}

func getDataset(b *testing.B, n, snaps int) *dataset.Dataset {
	b.Helper()
	benchData.Lock()
	defer benchData.Unlock()
	if benchData.cache == nil {
		benchData.cache = map[string]*dataset.Dataset{}
	}
	key := fmt.Sprintf("%d-%d", n, snaps)
	if d, ok := benchData.cache[key]; ok {
		return d
	}
	raw, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(n), NumSnapshots: snaps})
	if err != nil {
		b.Fatal(err)
	}
	norm, err := dataset.FitMinMax(raw, 0.1, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	d := dataset.NormalizeDataset(raw, norm)
	benchData.cache[key] = d
	return d
}

// -----------------------------------------------------------------------------
// Table I — the CNN architecture: per-layer forward+backward cost.
// -----------------------------------------------------------------------------

// BenchmarkTable1_LayerForwardBackward times each Table-I layer
// (channels 4→6, 6→16, 16→6, 6→4, kernel 5×5, same padding) on a
// 64×64 field, the per-layer cost profile of the paper's network.
func BenchmarkTable1_LayerForwardBackward(b *testing.B) {
	layers := []struct {
		name    string
		in, out int
	}{
		{"layer1_4to6", 4, 6},
		{"layer2_6to16", 6, 16},
		{"layer3_16to6", 16, 6},
		{"layer4_6to4", 6, 4},
	}
	for _, l := range layers {
		b.Run(l.name, func(b *testing.B) {
			g := tensor.NewRNG(1)
			conv := nn.NewConv2D(l.name, g, l.in, l.out, 5, 2)
			x := tensor.Normal(g, 0, 1, 1, l.in, 64, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y := conv.Forward(x)
				conv.Backward(y)
				nn.ZeroGrads(conv)
			}
		})
	}
}

// BenchmarkTable1_FullNetwork times the whole Table-I stack
// (4 conv layers + leaky ReLUs) forward+backward.
func BenchmarkTable1_FullNetwork(b *testing.B) {
	m, err := model.Build(model.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Normal(tensor.NewRNG(1), 0, 1, 1, grid.NumChannels, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := m.Forward(x)
		m.Backward(y)
		nn.ZeroGrads(m)
	}
}

// -----------------------------------------------------------------------------
// Convolution engine — GEMM fast path vs naive reference loops.
// -----------------------------------------------------------------------------

// BenchmarkConvGEMMvsNaive compares the two convolution engines
// (DESIGN.md §3) on the paper's Table-I architecture at 128×128 — the
// grid size of the paper's full-domain experiments — for the forward
// pass (the rollout/inference hot path) and the forward+backward pass
// (the training hot path). The naive sub-benchmarks report
// speedup_vs_naive, the ratio of their per-op time to the GEMM
// engine's for the same mode; scripts/bench.sh snapshots these numbers
// into BENCH_baseline.json.
func BenchmarkConvGEMMvsNaive(b *testing.B) {
	run := func(b *testing.B, backend nn.ConvBackend, backward bool) float64 {
		prev := nn.Backend
		nn.Backend = backend
		defer func() { nn.Backend = prev }()
		m, err := model.Build(model.PaperConfig())
		if err != nil {
			b.Fatal(err)
		}
		m.SetScratch(nn.NewArena())
		x := tensor.Normal(tensor.NewRNG(1), 0, 1, 1, grid.NumChannels, 128, 128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := m.Forward(x)
			if backward {
				m.Backward(y)
				nn.ZeroGrads(m)
			}
		}
		b.StopTimer()
		return b.Elapsed().Seconds() / float64(b.N)
	}
	for _, mode := range []struct {
		name     string
		backward bool
	}{
		{"forward", false},
		{"forward+backward", true},
	} {
		var gemmPerOp float64
		b.Run(mode.name+"/gemm", func(b *testing.B) {
			gemmPerOp = run(b, nn.FastPath, mode.backward)
		})
		b.Run(mode.name+"/naive", func(b *testing.B) {
			naivePerOp := run(b, nn.SlowPath, mode.backward)
			if gemmPerOp > 0 {
				b.ReportMetric(naivePerOp/gemmPerOp, "speedup_vs_naive")
			}
		})
	}
}

// BenchmarkConvGEMMWorkers measures the Workers knob on the GEMM
// engine's forward pass (Table-I at 128×128). Results are
// bit-identical for any worker count; on a single-core machine the
// higher counts only measure scheduling overhead.
func BenchmarkConvGEMMWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := model.Build(model.PaperConfig())
			if err != nil {
				b.Fatal(err)
			}
			m.SetScratch(nn.NewArena())
			m.SetWorkers(workers)
			x := tensor.Normal(tensor.NewRNG(1), 0, 1, 1, grid.NumChannels, 128, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward(x)
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Fig. 2 — domain decomposition: split/scatter cost and correctness scale.
// -----------------------------------------------------------------------------

// BenchmarkFig2_DecomposeScatter times slicing a full-domain snapshot
// into per-rank halo-extended subdomain tensors, the data motion
// behind Fig. 2's decomposition.
func BenchmarkFig2_DecomposeScatter(b *testing.B) {
	ds := getDataset(b, 64, 4)
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			px, py := mpi.BalancedDims(p)
			part, err := decomp.NewPartition(64, 64, px, py)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parts := part.SplitCHW(ds.Snapshots[0], 2)
				if len(parts) != p {
					b.Fatal("bad split")
				}
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Fig. 3 — one-step prediction accuracy per channel.
// -----------------------------------------------------------------------------

// BenchmarkFig3_AccuracyOneStep trains the paper's scheme on the
// Gaussian-pulse workload and reports the per-channel one-step MAPE
// on validation data as custom benchmark metrics (mape_density_pct,
// mape_pressure_pct, ...). One iteration = the full Fig. 3 pipeline.
func BenchmarkFig3_AccuracyOneStep(b *testing.B) {
	full := getDataset(b, 32, 150)
	train, val, err := full.Split(100)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 25
	cfg.LR = 0.003
	cfg.BatchSize = 4
	cfg.Schedule = opt.Cosine{Base: cfg.LR, Floor: cfg.LR / 30, Total: cfg.Epochs}
	var per []stats.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trainBench(b, train, 2, 2, cfg)
		eng, err := core.NewEngine(res.Ensemble())
		if err != nil {
			b.Fatal(err)
		}
		pairs := val.Pairs()
		preds := make([]*tensor.Tensor, len(pairs))
		tgts := make([]*tensor.Tensor, len(pairs))
		for k, pr := range pairs {
			preds[k], err = eng.Predict(context.Background(), pr.Input)
			if err != nil {
				b.Fatal(err)
			}
			tgts[k] = pr.Target
		}
		per = stats.PerChannel(tensor.Stack(preds), tensor.Stack(tgts))
	}
	b.StopTimer()
	names := []string{"density", "pressure", "velx", "vely"}
	for c, m := range per {
		b.ReportMetric(m.MAPE, "mape_"+names[c]+"_pct")
		b.ReportMetric(m.R2, "r2_"+names[c])
	}
}

// -----------------------------------------------------------------------------
// Fig. 4 — strong scaling of training time.
// -----------------------------------------------------------------------------

// BenchmarkFig4_StrongScaling measures the critical-path training time
// for P = 1, 4, 16, 64 ranks on a fixed workload (64×64 grid), the
// strong-scaling study of Fig. 4. Speedup and efficiency relative to
// P = 1 are reported as custom metrics by the P > 1 cases (computed
// against the P = 1 case run in the same invocation).
func BenchmarkFig4_StrongScaling(b *testing.B) {
	ds := getDataset(b, 64, 20)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 1
	var t1 float64
	for _, p := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			px, py := mpi.BalancedDims(p)
			var crit float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := trainBench(b, ds, px, py, cfg)
				crit = res.CriticalPathSeconds
				if res.TrainCommStats.MessagesSent != 0 {
					b.Fatal("training communicated")
				}
			}
			b.StopTimer()
			b.ReportMetric(crit, "crit_path_s")
			if p == 1 {
				t1 = crit
			} else if t1 > 0 && crit > 0 {
				speedup := t1 / crit
				b.ReportMetric(speedup, "speedup")
				b.ReportMetric(speedup/float64(p), "efficiency")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// §IV-B — error accumulation over rollout depth.
// -----------------------------------------------------------------------------

// BenchmarkRollout_ErrorAccumulation trains once, then benchmarks the
// parallel rollout and reports the relative error at depths 1 and 8
// (rel_err_step1/8 = 1 - R²), the §IV-B accuracy-drop observation.
func BenchmarkRollout_ErrorAccumulation(b *testing.B) {
	full := getDataset(b, 32, 150)
	train, _, err := full.Split(100)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 40
	cfg.Loss = "mse"
	cfg.LR = 0.003
	cfg.BatchSize = 4
	cfg.Model.Strategy = model.NeighborPad
	res := trainBench(b, train, 2, 2, cfg)
	eng, err := core.NewEngine(res.Ensemble())
	if err != nil {
		b.Fatal(err)
	}
	const depth = 8
	const start = 100
	ctx := context.Background()
	var r1, r8 float64
	var haloMsgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses, err := eng.NewSession(ctx, full.Snapshots[start])
		if err != nil {
			b.Fatal(err)
		}
		err = ses.Run(ctx, depth, func(k int, frame *tensor.Tensor) error {
			switch k {
			case 0:
				r1 = 1 - stats.Compute(frame, full.Snapshots[start+1]).R2
			case depth - 1:
				r8 = 1 - stats.Compute(frame, full.Snapshots[start+depth]).R2
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		haloMsgs = ses.HaloCommStats().MessagesSent
		ses.Close()
	}
	b.StopTimer()
	b.ReportMetric(r1, "rel_err_step1")
	b.ReportMetric(r8, "rel_err_step8")
	b.ReportMetric(float64(haloMsgs), "halo_msgs")
}

// -----------------------------------------------------------------------------
// §I / [4] — data-parallel weight-averaging baseline.
// -----------------------------------------------------------------------------

// BenchmarkBaseline_DataParallel benchmarks the Viviani-style baseline
// and reports its training communication volume (ours is zero by
// construction) and final loss.
func BenchmarkBaseline_DataParallel(b *testing.B) {
	full := getDataset(b, 32, 60)
	train, _, err := full.Split(40)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.Loss = "mse"
	trainer, err := core.NewTrainer(cfg, core.WithDataParallel(4))
	if err != nil {
		b.Fatal(err)
	}
	var res *core.DataParallelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := trainer.Train(context.Background(), train)
		if err != nil {
			b.Fatal(err)
		}
		res = rep.DataParallel
	}
	b.StopTimer()
	b.ReportMetric(float64(res.CommStats.MessagesSent), "train_msgs")
	b.ReportMetric(float64(res.CommStats.BytesSent)/1e6, "train_MB")
	b.ReportMetric(res.FinalLoss(), "final_loss")
}

// -----------------------------------------------------------------------------
// §III ablation — the four dimension-matching strategies.
// -----------------------------------------------------------------------------

// BenchmarkAblation_PaddingStrategies trains each §III strategy with
// the same budget and reports its one-step validation MSE (where the
// strategy supports reassembled predictions) and training time.
func BenchmarkAblation_PaddingStrategies(b *testing.B) {
	full := getDataset(b, 40, 120)
	train, val, err := full.Split(80)
	if err != nil {
		b.Fatal(err)
	}
	strategies := []model.Strategy{model.ZeroPad, model.NeighborPad, model.InnerCrop, model.TransposeConv}
	for _, strat := range strategies {
		b.Run(strat.String(), func(b *testing.B) {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 10
			cfg.Loss = "mse"
			cfg.LR = 0.003
			cfg.BatchSize = 4
			cfg.Model.Strategy = strat
			// All-valid stacks need ≥17-point blocks: use 1x2 on 40.
			px, py := 2, 2
			if cfg.Model.MinInputSize() > 10 {
				px, py = 1, 2
			}
			var res *core.ParallelResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = trainBench(b, train, px, py, cfg)
			}
			b.StopTimer()
			b.ReportMetric(res.CriticalPathSeconds, "crit_path_s")
			b.ReportMetric(res.Ranks[0].FinalLoss(), "train_loss")
			if strat != model.InnerCrop {
				eng, err := core.NewEngine(res.Ensemble())
				if err != nil {
					b.Fatal(err)
				}
				pred, err := eng.Predict(context.Background(), val.Pairs()[0].Input)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Compute(pred, val.Pairs()[0].Target).MSE, "val_mse")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// §II ablations — optimizer and loss choices.
// -----------------------------------------------------------------------------

// BenchmarkAblation_Optimizers compares the §II optimizer candidates
// under an equal budget; the paper reports ADAM "to have the best
// performance in our case".
func BenchmarkAblation_Optimizers(b *testing.B) {
	full := getDataset(b, 32, 60)
	train, _, err := full.Split(40)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"adam", "sgd", "momentum", "rmsprop"} {
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 8
			cfg.Loss = "mse"
			cfg.Optimizer = name
			cfg.LR = 0.003
			if name == "sgd" || name == "momentum" {
				cfg.LR = 0.05 // plain gradient methods need a larger step
			}
			var res *core.ParallelResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = trainBench(b, train, 2, 2, cfg)
			}
			b.StopTimer()
			b.ReportMetric(res.Ranks[0].FinalLoss(), "train_loss")
		})
	}
}

// BenchmarkAblation_Losses compares the §II loss candidates. The paper
// argues MAPE suits data whose channels span different magnitudes; the
// reported metric is the validation MAPE (computed identically for all
// training losses so they are comparable).
func BenchmarkAblation_Losses(b *testing.B) {
	full := getDataset(b, 32, 150)
	train, val, err := full.Split(100)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"mape", "mse", "mae", "smape", "huber"} {
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 10
			cfg.Loss = name
			cfg.LR = 0.003
			cfg.BatchSize = 4
			var res *core.ParallelResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = trainBench(b, train, 2, 2, cfg)
			}
			b.StopTimer()
			eng, err := core.NewEngine(res.Ensemble())
			if err != nil {
				b.Fatal(err)
			}
			pred, err := eng.Predict(context.Background(), val.Pairs()[0].Input)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stats.Compute(pred, val.Pairs()[0].Target).MAPE, "val_mape_pct")
		})
	}
}

// -----------------------------------------------------------------------------
// §III — halo-exchange cost (inference communication).
// -----------------------------------------------------------------------------

// BenchmarkHaloExchange times one parallel inference step including
// the two-phase point-to-point halo exchange, across process grids,
// and reports the per-step message count and volume.
func BenchmarkHaloExchange(b *testing.B) {
	ds := getDataset(b, 64, 4)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			px, py := mpi.BalancedDims(p)
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.Model.Strategy = model.NeighborPad
			res := trainBench(b, ds, px, py, cfg)
			eng, err := core.NewEngine(res.Ensemble(), core.WithNetModel(mpi.ClusterEthernet()))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var halo, comm mpi.CommStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses, err := eng.NewSession(ctx, ds.Snapshots[0])
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ses.Step(ctx); err != nil {
					b.Fatal(err)
				}
				comm, halo = ses.LastStepStats()
				ses.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(halo.MessagesSent), "halo_msgs")
			b.ReportMetric(float64(halo.BytesSent)/1e3, "halo_KB")
			b.ReportMetric(comm.VirtualCommSeconds, "virt_comm_s")
		})
	}
}

// -----------------------------------------------------------------------------
// §III / DESIGN.md §8 — halo-exchange schedule and transport ablation.
// -----------------------------------------------------------------------------

// BenchmarkHaloOverlapVsBlocking measures rollout throughput (steps/s)
// for the two halo-exchange schedules over both transports: the
// in-process channel transport and the TCP transport with every rank a
// separate localhost endpoint (sockets, framing, reader/writer
// goroutines — everything but the process boundary). Frames are
// bit-identical across all four cells (asserted by
// TestRolloutBitIdenticalAcrossTransportsAndModes); this benchmark
// reports what the overlap schedule buys in wall-clock, which is
// visible on the TCP transport where wire time is real and hidden
// behind the interior convolution tiles. scripts/bench.sh snapshots
// steps_per_s for all four cells into BENCH_baseline.json.
func BenchmarkHaloOverlapVsBlocking(b *testing.B) {
	ds := getDataset(b, 64, 8)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.NeighborPad
	res := trainBench(b, ds, 2, 2, cfg)
	ens := res.Ensemble()
	const depth = 8
	ctx := context.Background()

	for _, mode := range []core.ExchangeMode{core.Blocking, core.Overlap} {
		b.Run(fmt.Sprintf("mem/%s", mode), func(b *testing.B) {
			eng, err := core.NewEngine(ens, core.WithExchangeMode(mode))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses, err := eng.NewSession(ctx, ds.Snapshots[0])
				if err != nil {
					b.Fatal(err)
				}
				if err := ses.Run(ctx, depth, nil); err != nil {
					b.Fatal(err)
				}
				ses.Close()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(depth*b.N)/secs, "steps_per_s")
			}
		})
	}
	for _, mode := range []core.ExchangeMode{core.Blocking, core.Overlap} {
		b.Run(fmt.Sprintf("tcp/%s", mode), func(b *testing.B) {
			ranks := ens.Partition.Ranks()
			addrs, err := mpi.ReserveLocalAddrs(ranks)
			if err != nil {
				b.Fatal(err)
			}
			worlds := make([]*mpi.World, ranks)
			engines := make([]*core.Engine, ranks)
			var wg sync.WaitGroup
			dialErrs := make([]error, ranks)
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					worlds[r], dialErrs[r] = mpi.DialTCP(mpi.TCPConfig{Rank: r, Peers: addrs})
				}(r)
			}
			wg.Wait()
			for r, err := range dialErrs {
				if err != nil {
					b.Fatalf("rank %d: %v", r, err)
				}
			}
			defer func() {
				for _, w := range worlds {
					w.Close()
				}
			}()
			for r := 0; r < ranks; r++ {
				engines[r], err = core.NewEngine(ens, core.WithExchangeMode(mode), core.WithWorld(worlds[r]))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errs := make([]error, ranks)
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						ses, err := engines[r].NewSession(ctx, ds.Snapshots[0])
						if err != nil {
							errs[r] = err
							return
						}
						errs[r] = ses.Run(ctx, depth, nil)
						if cerr := ses.Close(); errs[r] == nil {
							errs[r] = cerr
						}
					}(r)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(depth*b.N)/secs, "steps_per_s")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// DESIGN.md §13 — float32 serving path vs the float64 reference.
// -----------------------------------------------------------------------------

// BenchmarkPrecisionRollout measures what core.WithPrecision(nn.F32)
// buys on the BenchmarkHaloOverlapVsBlocking/mem shapes: the same
// trained 2×2 NeighborPad ensemble, the same 8-step in-process
// rollout, once per precision. The f32 cell reports speedup_vs_f64
// (per-op time ratio against the f64 cell run in the same
// invocation); frames agree to the EXPERIMENTS.md error budget
// (asserted by core.TestEngineF32RolloutWithinBudget, not here).
// scripts/bench.sh snapshots steps_per_s for both cells into
// BENCH_baseline.json.
func BenchmarkPrecisionRollout(b *testing.B) {
	ds := getDataset(b, 64, 8)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.NeighborPad
	res := trainBench(b, ds, 2, 2, cfg)
	ens := res.Ensemble()
	const depth = 8
	ctx := context.Background()
	var f64PerOp float64
	for _, prec := range []nn.Precision{nn.F64, nn.F32} {
		b.Run(prec.String(), func(b *testing.B) {
			eng, err := core.NewEngine(ens, core.WithPrecision(prec))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses, err := eng.NewSession(ctx, ds.Snapshots[0])
				if err != nil {
					b.Fatal(err)
				}
				if err := ses.Run(ctx, depth, nil); err != nil {
					b.Fatal(err)
				}
				ses.Close()
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(depth*b.N)/secs, "steps_per_s")
			}
			if prec == nn.F64 {
				f64PerOp = perOp
			} else if f64PerOp > 0 && perOp > 0 {
				b.ReportMetric(f64PerOp/perOp, "speedup_vs_f64")
			}
		})
	}
}

// steadyStateNet builds the whole-frame Table-I network pinned to the
// float32 path for the zero-alloc rollout loop: shape-preserving
// (zero-padding strategy), so a predicted frame feeds straight back in.
func steadyStateNet(tb testing.TB) *nn.Sequential {
	tb.Helper()
	m, err := model.Build(model.PaperConfig())
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.SetPrecision(nn.F32); err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkSteadyStateRollout is the zero-alloc contract of the fused
// f32 hot loop as a gated benchmark: an autoregressive whole-frame
// rollout on the Table-I network at 64×64, ping-ponging between two
// preallocated frames via ForwardInto. After the warmup iteration the
// steady state must report allocs_per_op == 0 — the bench-regression
// gate treats any growth from a zero baseline as a failure, and
// TestSteadyStateRolloutZeroAlloc asserts the same contract in the
// ordinary test suite.
func BenchmarkSteadyStateRollout(b *testing.B) {
	m := steadyStateNet(b)
	g := tensor.NewRNG(1)
	x := tensor.Normal(g, 0, 1, 1, grid.NumChannels, 64, 64)
	y := tensor.New(1, grid.NumChannels, 64, 64)
	m.ForwardInto(x, y) // warm the arena and caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardInto(x, y)
		x, y = y, x
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "steps_per_s")
	}
}

// TestSteadyStateRolloutZeroAlloc asserts the benchmark's contract
// outside the bench harness, so `go test ./...` catches an allocation
// creeping into the hot loop without anyone running benchmarks.
func TestSteadyStateRolloutZeroAlloc(t *testing.T) {
	m := steadyStateNet(t)
	g := tensor.NewRNG(1)
	x := tensor.Normal(g, 0, 1, 1, grid.NumChannels, 64, 64)
	y := tensor.New(1, grid.NumChannels, 64, 64)
	m.ForwardInto(x, y)
	m.ForwardInto(y, x)
	allocs := testing.AllocsPerRun(20, func() {
		m.ForwardInto(x, y)
		x, y = y, x
	})
	if allocs != 0 {
		t.Fatalf("steady-state rollout step allocates %.1f objects/op, want 0", allocs)
	}
}

// -----------------------------------------------------------------------------
// Serving API — concurrent sessions over one engine.
// -----------------------------------------------------------------------------

// BenchmarkSessionConcurrentRollout measures the aggregate rollout
// throughput of 1 vs 4 concurrent Sessions over ONE shared Engine —
// the serving scenario the Engine/Session redesign exists for. Each
// session is an independent 4-step rollout on per-session model
// clones, so the sessions share no mutable state and the only ceiling
// is the hardware: on a 4+-core machine the 4-session case should
// reach ≥2× the single-session steps/s (scripts/bench.sh snapshots
// steps_per_s and the host's CPU count into the bench JSON). On
// fewer cores expect the two cases to tie — a single session's
// per-step world already runs one goroutine per rank, so extra
// sessions only add work, not parallelism, once cores are saturated.
// Isolation/correctness of concurrent sessions is asserted separately
// by TestConcurrentSessionsBitIdentical, not here.
func BenchmarkSessionConcurrentRollout(b *testing.B) {
	ds := getDataset(b, 64, 8)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Model.Strategy = model.NeighborPad
	res := trainBench(b, ds, 2, 2, cfg)
	eng, err := core.NewEngine(res.Ensemble())
	if err != nil {
		b.Fatal(err)
	}
	const depth = 4
	ctx := context.Background()
	for _, sessions := range []int{1, 4} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, sessions)
				for s := 0; s < sessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						ses, err := eng.NewSession(ctx, ds.Snapshots[0])
						if err != nil {
							errs[s] = err
							return
						}
						defer ses.Close()
						errs[s] = ses.Run(ctx, depth, nil)
					}(s)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(sessions*depth*b.N)/secs, "steps_per_s")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Serving API — micro-batched request coalescing (DESIGN.md §9).
// -----------------------------------------------------------------------------

// servingEnsemble builds an untrained (but deterministic) ensemble for
// throughput benchmarks: serving cost is independent of the weights,
// so skipping training keeps the harness fast without changing what is
// measured. It shares the construction recipe with the package
// examples (untrainedEnsemble, example_test.go).
func servingEnsemble(b *testing.B, n, px, py int) *core.Ensemble {
	b.Helper()
	ens, err := untrainedEnsemble(n, px, py)
	if err != nil {
		b.Fatal(err)
	}
	return ens
}

// BenchmarkBatcherThroughput measures one-step serving throughput
// (requests/s) on the Table-I architecture over the full 128×128 grid
// at the paper's 8×8 decomposition, comparing the unbatched
// Engine.Predict baseline (sequential, and 16 concurrent callers)
// against the same 16 callers coalesced by a core.Batcher at
// micro-batch caps 1/4/8/16. The batcher cells additionally report
// speedup_vs_sequential (vs the one-caller Predict loop),
// speedup_vs_unbatched (vs the 16 concurrent unbatched callers — the
// apples-to-apples serving baseline, which pays one clone set per
// in-flight request) and the mean achieved batch fill. Batched
// and unbatched frames are bit-identical
// (core.TestBatcherConcurrentBitIdentical); this benchmark measures
// only what the coalescing buys in wall-clock. Single-core machines
// mostly see the per-request fixed-overhead amortization (clone-set
// acquisition, per-layer call overhead at small subdomains);
// multi-core machines additionally get PredictBatch's rank fan-out,
// which the per-request path cannot use. scripts/bench.sh snapshots
// requests_per_s into BENCH_baseline.json.
func BenchmarkBatcherThroughput(b *testing.B) {
	const (
		n           = 128
		nStates     = 8
		clients     = 16
		reqsPerIter = 16
	)
	ens := servingEnsemble(b, n, 8, 8)
	g := tensor.NewRNG(3)
	states := make([]*tensor.Tensor, nStates)
	for i := range states {
		states[i] = tensor.Normal(g, 0, 1, grid.NumChannels, n, n)
	}
	workers := runtime.GOMAXPROCS(0)
	newEng := func() *core.Engine {
		eng, err := core.NewEngine(ens, core.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	ctx := context.Background()
	reportRPS := func(b *testing.B, served int) float64 {
		secs := b.Elapsed().Seconds()
		if secs <= 0 {
			return 0
		}
		rps := float64(served) / secs
		b.ReportMetric(rps, "requests_per_s")
		return rps
	}

	var seqRPS, concRPS float64
	b.Run("unbatched/sequential", func(b *testing.B) {
		eng := newEng()
		if _, err := eng.Predict(ctx, states[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < reqsPerIter; r++ {
				if _, err := eng.Predict(ctx, states[r%nStates]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		seqRPS = reportRPS(b, reqsPerIter*b.N)
	})
	b.Run("unbatched/concurrent", func(b *testing.B) {
		eng := newEng()
		if _, err := eng.Predict(ctx, states[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					_, errs[c] = eng.Predict(ctx, states[c%nStates])
				}(c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		concRPS = reportRPS(b, clients*b.N)
	})
	for _, mb := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("batcher/max=%d", mb), func(b *testing.B) {
			eng := newEng()
			bat, err := core.NewBatcher(eng, core.WithMaxBatch(mb), core.WithMaxDelay(2*time.Millisecond))
			if err != nil {
				b.Fatal(err)
			}
			defer bat.Close()
			if _, err := bat.Predict(ctx, states[0]); err != nil {
				b.Fatal(err)
			}
			warm := bat.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, clients)
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						_, errs[c] = bat.Predict(ctx, states[c%nStates])
					}(c)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			rps := reportRPS(b, clients*b.N)
			if seqRPS > 0 {
				b.ReportMetric(rps/seqRPS, "speedup_vs_sequential")
			}
			if concRPS > 0 {
				// The apples-to-apples serving comparison: the same 16
				// concurrent clients with coalescing off. Unbatched
				// concurrency pays one clone set per in-flight request
				// and the resulting allocation/cache pressure.
				b.ReportMetric(rps/concRPS, "speedup_vs_unbatched")
			}
			s := bat.Stats()
			s.Requests -= warm.Requests
			s.Batches -= warm.Batches
			b.ReportMetric(s.MeanFill(), "mean_batch_fill")
		})
	}
}

// -----------------------------------------------------------------------------
// Substrate benchmarks — solver and collectives (supporting numbers).
// -----------------------------------------------------------------------------

// BenchmarkEulerSolverStep times one RK4 step of the linearized Euler
// solver per grid size, the cost of generating training data.
func BenchmarkEulerSolverStep(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := euler.NewSolver(euler.DefaultConfig(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkAblation_TemporalWindow compares rollout error growth for a
// single-frame input vs a 3-frame temporal window (the paper's §V
// future-work hypothesis: time-series inputs capture temporal
// connectivity). Reported metrics: relative error (1−R²) at rollout
// depth 6 for each variant.
func BenchmarkAblation_TemporalWindow(b *testing.B) {
	full := getDataset(b, 32, 120)
	train, _, err := full.Split(90)
	if err != nil {
		b.Fatal(err)
	}
	const depth = 6
	for _, window := range []int{1, 3} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 15
			cfg.Loss = "mse"
			cfg.LR = 0.003
			cfg.BatchSize = 4
			cfg.Model.Strategy = model.NeighborPad
			cfg.TemporalWindow = window
			cfg.Model.Channels = append([]int(nil), cfg.Model.Channels...)
			cfg.Model.Channels[0] = window * grid.NumChannels
			var rel float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := trainBench(b, train, 2, 2, cfg)
				eng, err := core.NewEngine(res.Ensemble())
				if err != nil {
					b.Fatal(err)
				}
				const start = 90
				ctx := context.Background()
				ses, err := eng.NewSession(ctx, full.Snapshots[start-window+1:start+1]...)
				if err != nil {
					b.Fatal(err)
				}
				err = ses.Run(ctx, depth, func(k int, frame *tensor.Tensor) error {
					if k == depth-1 {
						rel = 1 - stats.Compute(frame, full.Snapshots[start+depth]).R2
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				ses.Close()
			}
			b.StopTimer()
			b.ReportMetric(rel, "rel_err_step6")
		})
	}
}

// BenchmarkAblation_DecompositionShape compares block (√P×√P) against
// strip (P×1) decompositions at equal rank count: strips have longer
// interfaces, so the halo traffic per inference step is larger.
// Reported: total communication volume of a 4-step rollout.
func BenchmarkAblation_DecompositionShape(b *testing.B) {
	ds := getDataset(b, 64, 8)
	shapes := []struct {
		name   string
		px, py int
	}{
		{"blocks_4x2", 4, 2},
		{"strips_8x1", 8, 1},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			cfg := core.DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.Model.Strategy = model.NeighborPad
			res := trainBench(b, ds, sh.px, sh.py, cfg)
			eng, err := core.NewEngine(res.Ensemble())
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var comm, halo mpi.CommStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses, err := eng.NewSession(ctx, ds.Snapshots[0])
				if err != nil {
					b.Fatal(err)
				}
				if err := ses.Run(ctx, 4, nil); err != nil {
					b.Fatal(err)
				}
				comm, halo = ses.CommStats(), ses.HaloCommStats()
				ses.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(comm.BytesSent)/1e3, "total_comm_KB")
			b.ReportMetric(float64(halo.BytesSent)/1e3, "rank0_halo_KB")
		})
	}
}

// BenchmarkMPIRingVsTree compares the two allreduce algorithms on the
// data-parallel baseline's weight vector: recursive doubling
// (latency-optimal) vs ring (bandwidth-optimal).
func BenchmarkMPIRingVsTree(b *testing.B) {
	const vecLen = 11032 // Table-I parameter count
	for _, algo := range []string{"tree", "ring"} {
		b.Run(fmt.Sprintf("%s/P=8", algo), func(b *testing.B) {
			data := make([]float64, vecLen)
			var bytesPerRank int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(8)
				err := w.Run(func(c *mpi.Comm) {
					if algo == "ring" {
						c.RingAllreduce(data, mpi.OpSum)
					} else {
						c.Allreduce(data, mpi.OpSum)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				bytesPerRank = w.Stats()[0].BytesSent
			}
			b.StopTimer()
			b.ReportMetric(float64(bytesPerRank)/1e3, "sent_KB_per_rank")
		})
	}
}

// BenchmarkMPIAllreduce times the recursive-doubling allreduce used by
// the data-parallel baseline, per world size, on a Table-I-sized
// parameter vector.
func BenchmarkMPIAllreduce(b *testing.B) {
	const vecLen = 11032 // Table-I parameter count
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			data := make([]float64, vecLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(p)
				err := w.Run(func(c *mpi.Comm) {
					c.Allreduce(data, mpi.OpSum)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
