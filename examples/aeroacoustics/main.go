// Aeroacoustics: the paper's §IV workload at a larger scale — learn
// the linearized Euler equations around a Gaussian pressure pulse and
// evaluate one-step prediction quality per physical field (Fig. 3),
// using the neighbour-padding strategy so subdomain interfaces carry
// real data from adjacent ranks.
//
// Run with:
//
//	go run ./examples/aeroacoustics
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 48
		snaps  = 180 // the wave reflects ~2.5x; training sees all regimes
		epochs = 40
		px, py = 2, 2
	)

	fmt.Printf("simulating the Gaussian pulse on %dx%d (%d snapshots)...\n", gridN, gridN, snaps)
	cfg := euler.DefaultConfig(gridN)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: cfg, NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sound speed %.3f, dt %.5f, initial peak p' %.3f\n",
		cfg.SoundSpeed(), cfg.StableDt(), cfg.Amplitude)

	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, val, err := nds.Split(snaps * 2 / 3)
	if err != nil {
		log.Fatal(err)
	}

	tcfg := core.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.LR = 0.003
	tcfg.BatchSize = 4
	tcfg.Schedule = opt.Cosine{Base: tcfg.LR, Floor: tcfg.LR / 30, Total: epochs}
	tcfg.Model.Strategy = model.NeighborPad // approach 2: halo from neighbours
	fmt.Printf("training %d subdomain networks (%v strategy, ADAM+MAPE, %d epochs)...\n",
		px*py, tcfg.Model.Strategy, epochs)
	ctx := context.Background()
	trainer, err := core.NewTrainer(tcfg, core.WithTopology(px, py))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Parallel
	for _, rr := range res.Ranks {
		fmt.Printf("  rank %d block %-14s final MAPE %.3f%%  (%.2fs)\n",
			rr.Rank, rr.Block, rr.FinalLoss(), rr.Seconds)
	}

	// Fig. 3 protocol: evaluate one-step predictions over the entire
	// validation set, per channel, served through the engine.
	eng, err := core.NewEngine(rep.Ensemble())
	if err != nil {
		log.Fatal(err)
	}
	pairs := val.Pairs()
	preds := make([]*tensor.Tensor, len(pairs))
	tgts := make([]*tensor.Tensor, len(pairs))
	for i, pr := range pairs {
		preds[i], err = eng.Predict(ctx, pr.Input)
		if err != nil {
			log.Fatal(err)
		}
		tgts[i] = pr.Target
	}
	per := stats.PerChannel(tensor.Stack(preds), tensor.Stack(tgts))
	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 3 — one-step accuracy over %d validation pairs", len(pairs)),
		"channel", "mape[%]", "mse", "linf", "r2")
	for c, m := range per {
		tbl.Add(grid.ChannelNames[c], fmt.Sprintf("%.3f", m.MAPE),
			fmt.Sprintf("%.3e", m.MSE), fmt.Sprintf("%.3e", m.Linf),
			fmt.Sprintf("%.4f", m.R2))
	}
	fmt.Print(tbl.String())
	fmt.Println("expected shape (paper §IV-B): density/pressure agree best;" +
		" small discrepancies in the velocities.")
}
