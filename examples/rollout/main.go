// Rollout: the §IV-B error-accumulation study. A trained ensemble
// predicts many steps autoregressively — its own output becomes the
// next input, with halo data exchanged point-to-point before every
// step — and the error per step is compared against the solver's
// trajectory. The paper: "the accumulative error decreases the
// accuracy" beyond one step.
//
// Run with:
//
//	go run ./examples/rollout
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 150 // include boundary reflections in training
		epochs = 60
		depth  = 12
	)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, _, err := nds.Split(snaps * 2 / 3)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Loss = "mse"
	cfg.LR = 0.003
	cfg.BatchSize = 4
	cfg.Model.Strategy = model.NeighborPad
	fmt.Printf("training 2x2 ensemble for %d epochs...\n", epochs)
	trainer, err := core.NewTrainer(cfg, core.WithTopology(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the rollout through a streaming Session: each frame is
	// scored and discarded as it is produced, so a 10k-step rollout
	// would use the same memory as this 12-step one.
	start := snaps * 2 / 3
	eng, err := core.NewEngine(rep.Ensemble(), core.WithNetModel(mpi.ClusterEthernet()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolling out %d steps from validation snapshot %d (streaming session)...\n", depth, start)
	ses, err := eng.NewSession(ctx, nds.Snapshots[start])
	if err != nil {
		log.Fatal(err)
	}
	defer ses.Close()

	tbl := stats.NewTable("error accumulation over rollout depth (§IV-B)",
		"step", "mape[%]", "rmse", "1-r2")
	err = ses.Run(ctx, depth, func(k int, pred *tensor.Tensor) error {
		m := stats.Compute(pred, nds.Snapshots[start+k+1])
		tbl.Add(fmt.Sprint(k+1), fmt.Sprintf("%.3f", m.MAPE),
			fmt.Sprintf("%.3e", m.RMSE), fmt.Sprintf("%.4f", 1-m.R2))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())
	halo, comm := ses.HaloCommStats(), ses.CommStats()
	fmt.Printf("\nhalo exchange: %d msgs, %.1f KB; modeled comm time on 10GbE: %.4fs\n",
		halo.MessagesSent, float64(halo.BytesSent)/1e3,
		comm.VirtualCommSeconds)
	fmt.Println("expected: error grows with depth — the motivation for the")
	fmt.Println("LSTM/recurrent extension the paper leaves to future work")
	fmt.Println("(implemented here in examples/temporal).")
}
