// Rollout: the §IV-B error-accumulation study. A trained ensemble
// predicts many steps autoregressively — its own output becomes the
// next input, with halo data exchanged point-to-point before every
// step — and the error per step is compared against the solver's
// trajectory. The paper: "the accumulative error decreases the
// accuracy" beyond one step.
//
// Run with:
//
//	go run ./examples/rollout
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 150 // include boundary reflections in training
		epochs = 60
		depth  = 12
	)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, _, err := nds.Split(snaps * 2 / 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Loss = "mse"
	cfg.LR = 0.003
	cfg.BatchSize = 4
	cfg.Model.Strategy = model.NeighborPad
	fmt.Printf("training 2x2 ensemble for %d epochs...\n", epochs)
	res, err := core.TrainParallel(train, 2, 2, cfg, core.CriticalPath)
	if err != nil {
		log.Fatal(err)
	}

	start := snaps * 2 / 3
	e := res.Ensemble()
	fmt.Printf("rolling out %d steps from validation snapshot %d...\n", depth, start)
	roll, err := e.Rollout(nds.Snapshots[start], depth, mpi.ClusterEthernet())
	if err != nil {
		log.Fatal(err)
	}

	tbl := stats.NewTable("error accumulation over rollout depth (§IV-B)",
		"step", "mape[%]", "rmse", "1-r2")
	for k, pred := range roll.Steps {
		m := stats.Compute(pred, nds.Snapshots[start+k+1])
		tbl.Add(fmt.Sprint(k+1), fmt.Sprintf("%.3f", m.MAPE),
			fmt.Sprintf("%.3e", m.RMSE), fmt.Sprintf("%.4f", 1-m.R2))
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nhalo exchange: %d msgs, %.1f KB; modeled comm time on 10GbE: %.4fs\n",
		roll.HaloCommStats.MessagesSent, float64(roll.HaloCommStats.BytesSent)/1e3,
		roll.CommStats.VirtualCommSeconds)
	fmt.Println("expected: error grows with depth — the motivation for the")
	fmt.Println("LSTM/recurrent extension the paper leaves to future work")
	fmt.Println("(implemented here in examples/temporal).")
}
