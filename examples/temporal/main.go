// Temporal: the paper's §V future work, implemented and measured.
//
// The paper observes that a network trained on single (t → t+1) pairs
// "can predict a single time step accurately. However, if the output
// is used as a new input … the accumulative error decreases the
// accuracy", and proposes feeding time-series so the network captures
// temporal connectivity. This example trains the same Table-I CNN
// with a 1-frame input and with a 3-frame temporal window (12 input
// channels), then rolls both out autoregressively and compares the
// error growth.
//
// Run with:
//
//	go run ./examples/temporal
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 150
		epochs = 60
		depth  = 10
		window = 3
	)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, _, err := nds.Split(100)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	base := core.DefaultTrainConfig()
	base.Epochs = epochs
	base.Loss = "mse"
	base.LR = 0.003
	base.BatchSize = 4
	base.Model.Strategy = model.NeighborPad

	fmt.Printf("training single-frame ensemble (%d epochs)...\n", epochs)
	sTrainer, err := core.NewTrainer(base, core.WithTopology(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	single, err := sTrainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}

	wcfg := base
	wcfg.TemporalWindow = window
	wcfg.Model.Channels = append([]int(nil), base.Model.Channels...)
	wcfg.Model.Channels[0] = window * grid.NumChannels
	fmt.Printf("training %d-frame temporal-window ensemble (%d epochs)...\n", window, epochs)
	wTrainer, err := core.NewTrainer(wcfg, core.WithTopology(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	temporal, err := wTrainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}

	// Roll both out from the start of the validation region — as two
	// concurrent streaming sessions, one per engine.
	const start = 100
	rollOne := func(rep *core.TrainReport, initials []*tensor.Tensor, rel []float64) error {
		eng, err := core.NewEngine(rep.Ensemble())
		if err != nil {
			return err
		}
		ses, err := eng.NewSession(ctx, initials...)
		if err != nil {
			return err
		}
		defer ses.Close()
		return ses.Run(ctx, depth, func(k int, frame *tensor.Tensor) error {
			rel[k] = 1 - stats.Compute(frame, nds.Snapshots[start+k+1]).R2
			return nil
		})
	}
	relS := make([]float64, depth)
	relT := make([]float64, depth)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = rollOne(single, nds.Snapshots[start:start+1], relS)
	}()
	go func() {
		defer wg.Done()
		errs[1] = rollOne(temporal, nds.Snapshots[start-window+1:start+1], relT)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	tbl := stats.NewTable("rollout error (1 - R²) vs depth: single frame vs 3-frame window",
		"step", "single", "window-3")
	for k := 0; k < depth; k++ {
		tbl.Add(fmt.Sprint(k+1), fmt.Sprintf("%.4f", relS[k]), fmt.Sprintf("%.4f", relT[k]))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nthe temporal window gives the network the finite-difference-in-time")
	fmt.Println("information a single frame cannot carry — the §V hypothesis, testable here.")
}
