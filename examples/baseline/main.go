// Baseline: the paper's scheme vs the Viviani-style data-parallel
// weight-averaging baseline [4] it argues against (§I). Both train the
// same workload for the same number of epochs; the comparison shows
// the communication volumes (zero vs one allreduce per epoch) and the
// resulting losses.
//
// Run with:
//
//	go run ./examples/baseline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 150 // include boundary reflections in training
		epochs = 12
		ranks  = 4
	)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, val, err := nds.Split(snaps * 2 / 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Loss = "mse"

	fmt.Printf("training both schemes on %d ranks for %d epochs...\n\n", ranks, epochs)

	// Both schemes share one Trainer API: only the options differ.
	ctx := context.Background()
	ourTrainer, err := core.NewTrainer(cfg, core.WithTopology(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	ourRep, err := ourTrainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}
	ours := ourRep.Parallel
	baseTrainer, err := core.NewTrainer(cfg, core.WithDataParallel(ranks))
	if err != nil {
		log.Fatal(err)
	}
	baseRep, err := baseTrainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}
	base := baseRep.DataParallel

	// Validation error of each scheme's prediction, served through the
	// engine.
	eng, err := core.NewEngine(ourRep.Ensemble())
	if err != nil {
		log.Fatal(err)
	}
	pair := val.Pairs()[0]
	ourPred, err := eng.Predict(ctx, pair.Input)
	if err != nil {
		log.Fatal(err)
	}
	ourErr := stats.Compute(ourPred, pair.Target)

	c, h, w := pair.Input.Dim(0), pair.Input.Dim(1), pair.Input.Dim(2)
	basePred := base.Model.Forward(pair.Input.Clone().Reshape(1, c, h, w)).Reshape(c, h, w)
	baseErr := stats.Compute(basePred, pair.Target)

	// Mean final training loss of our per-rank nets.
	ourLoss := 0.0
	for _, rr := range ours.Ranks {
		ourLoss += rr.FinalLoss()
	}
	ourLoss /= float64(len(ours.Ranks))

	tbl := stats.NewTable("domain-decomposed (paper §III) vs data-parallel averaging [4]",
		"scheme", "train-msgs", "train-MB", "final-train-loss", "val-rmse")
	tbl.Add("domain-decomposed (ours)",
		fmt.Sprint(ours.TrainCommStats.MessagesSent),
		fmt.Sprintf("%.2f", float64(ours.TrainCommStats.BytesSent)/1e6),
		fmt.Sprintf("%.4g", ourLoss),
		fmt.Sprintf("%.3e", ourErr.RMSE))
	tbl.Add("data-parallel averaging",
		fmt.Sprint(base.CommStats.MessagesSent),
		fmt.Sprintf("%.2f", float64(base.CommStats.BytesSent)/1e6),
		fmt.Sprintf("%.4g", base.FinalLoss()),
		fmt.Sprintf("%.3e", baseErr.RMSE))
	fmt.Print(tbl.String())
	fmt.Println("\nthe paper's argument (§I): averaging alters the learning algorithm and")
	fmt.Println("its global reductions are a bottleneck; the decomposition scheme trains")
	fmt.Println("with zero messages and each net specializes on its subdomain.")
}
