// Baseline: the paper's scheme vs the Viviani-style data-parallel
// weight-averaging baseline [4] it argues against (§I). Both train the
// same workload for the same number of epochs; the comparison shows
// the communication volumes (zero vs one allreduce per epoch) and the
// resulting losses.
//
// Run with:
//
//	go run ./examples/baseline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 150 // include boundary reflections in training
		epochs = 12
		ranks  = 4
	)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, val, err := nds.Split(snaps * 2 / 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Loss = "mse"

	fmt.Printf("training both schemes on %d ranks for %d epochs...\n\n", ranks, epochs)

	ours, err := core.TrainParallel(train, 2, 2, cfg, core.CriticalPath)
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.TrainDataParallel(train, ranks, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Validation error of each scheme's prediction.
	pair := val.Pairs()[0]
	ourPred, err := ours.Ensemble().PredictOneStep(pair.Input)
	if err != nil {
		log.Fatal(err)
	}
	ourErr := stats.Compute(ourPred, pair.Target)

	c, h, w := pair.Input.Dim(0), pair.Input.Dim(1), pair.Input.Dim(2)
	basePred := base.Model.Forward(pair.Input.Clone().Reshape(1, c, h, w)).Reshape(c, h, w)
	baseErr := stats.Compute(basePred, pair.Target)

	// Mean final training loss of our per-rank nets.
	ourLoss := 0.0
	for _, rr := range ours.Ranks {
		ourLoss += rr.FinalLoss()
	}
	ourLoss /= float64(len(ours.Ranks))

	tbl := stats.NewTable("domain-decomposed (paper §III) vs data-parallel averaging [4]",
		"scheme", "train-msgs", "train-MB", "final-train-loss", "val-rmse")
	tbl.Add("domain-decomposed (ours)",
		fmt.Sprint(ours.TrainCommStats.MessagesSent),
		fmt.Sprintf("%.2f", float64(ours.TrainCommStats.BytesSent)/1e6),
		fmt.Sprintf("%.4g", ourLoss),
		fmt.Sprintf("%.3e", ourErr.RMSE))
	tbl.Add("data-parallel averaging",
		fmt.Sprint(base.CommStats.MessagesSent),
		fmt.Sprintf("%.2f", float64(base.CommStats.BytesSent)/1e6),
		fmt.Sprintf("%.4g", base.FinalLoss()),
		fmt.Sprintf("%.3e", baseErr.RMSE))
	fmt.Print(tbl.String())
	fmt.Println("\nthe paper's argument (§I): averaging alters the learning algorithm and")
	fmt.Println("its global reductions are a bottleneck; the decomposition scheme trains")
	fmt.Println("with zero messages and each net specializes on its subdomain.")
}
