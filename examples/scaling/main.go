// Scaling: the Fig.-4 strong-scaling study as a runnable example.
// A fixed training workload is split over more and more ranks; the
// critical-path training time falls ≈ 1/P because the scheme never
// communicates during training.
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		gridN  = 32
		snaps  = 40
		epochs = 2
	)
	fmt.Printf("fixed workload: %dx%d grid, %d training pairs, %d epochs\n",
		gridN, gridN, snaps-1, epochs)
	ds, err := dataset.Generate(dataset.GenConfig{Euler: euler.DefaultConfig(gridN), NumSnapshots: snaps})
	if err != nil {
		log.Fatal(err)
	}
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)

	cfg := core.DefaultTrainConfig()
	cfg.Epochs = epochs

	var table stats.ScalingTable
	for _, p := range []int{1, 4, 16} {
		px, py := mpi.BalancedDims(p)
		trainer, err := core.NewTrainer(cfg, core.WithTopology(px, py))
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		rep, err := trainer.Train(context.Background(), nds)
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		table.Add(p, rep.Parallel.CriticalPathSeconds)
	}
	fmt.Print(table.Render("strong scaling (critical-path timing, DESIGN.md §5)").String())
	fmt.Println("\npaper's Fig. 4: near-perfect scaling 1 → 64 cores (4096s → 64s);")
	fmt.Println("the same 1/P shape appears here because training is communication-free.")
}
