// Quickstart: the smallest end-to-end run of the paper's scheme.
//
// It generates a short linearized-Euler simulation, trains four
// independent subdomain CNNs in parallel (one per "MPI rank", §III),
// predicts one step ahead on a validation snapshot, and prints the
// per-channel agreement — a miniature of the paper's Fig. 3 protocol.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate: a Gaussian pressure pulse on a 32x32 grid
	//    (the paper's §IV-A test case, scaled down). 150 snapshots let
	//    the wave reflect off the boundaries a few times, so the
	//    training portion covers the same dynamics as validation —
	//    with fewer, validation would be out of distribution (see
	//    EXPERIMENTS.md).
	fmt.Println("1. generating simulation data (Ateles substitute)...")
	ds, err := dataset.Generate(dataset.GenConfig{
		Euler:        euler.DefaultConfig(32),
		NumSnapshots: 150,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Normalize into a strictly positive range so the paper's MAPE
	//    loss (Eq. 7) is well-conditioned, then split train/validation
	//    like the paper (first 2/3 for training).
	norm, err := dataset.FitMinMax(ds, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nds := dataset.NormalizeDataset(ds, norm)
	train, val, err := nds.Split(100)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the paper's scheme: a 2x2 process grid, one Table-I CNN
	//    per subdomain, ADAM + MAPE, zero communication. The Trainer is
	//    cancellable (ctx) and can stream progress; here we take the
	//    defaults.
	fmt.Println("2. training 4 independent subdomain networks...")
	ctx := context.Background()
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 30
	cfg.LR = 0.003
	cfg.BatchSize = 4
	trainer, err := core.NewTrainer(cfg, core.WithTopology(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trainer.Train(ctx, train)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Parallel
	fmt.Printf("   critical-path time %.2fs (sum over ranks %.2fs, speedup %.2fx)\n",
		res.CriticalPathSeconds, res.TotalComputeSeconds, res.Speedup())
	fmt.Printf("   messages exchanged during training: %d (the paper's central claim)\n",
		res.TrainCommStats.MessagesSent)

	// 4. Serve a one-step prediction on a validation snapshot through
	//    the Engine (goroutine-safe: any number of Predict calls and
	//    rollout Sessions could run concurrently over it).
	fmt.Println("3. one-step prediction on validation data...")
	eng, err := core.NewEngine(rep.Ensemble())
	if err != nil {
		log.Fatal(err)
	}
	pair := val.Pairs()[0]
	pred, err := eng.Predict(ctx, pair.Input)
	if err != nil {
		log.Fatal(err)
	}
	per := stats.PerChannel(pred, pair.Target)
	tbl := stats.NewTable("per-channel one-step accuracy", "channel", "mape[%]", "rmse", "r2")
	for c, m := range per {
		tbl.Add(grid.ChannelNames[c], fmt.Sprintf("%.2f", m.MAPE),
			fmt.Sprintf("%.2e", m.RMSE), fmt.Sprintf("%.4f", m.R2))
	}
	fmt.Print(tbl.String())
	fmt.Println("done — see examples/aeroacoustics for the full workload.")
}
